//! The process-resident worker pool behind every [`crate::Executor`]
//! primitive.
//!
//! Workers are long-lived OS threads parked on a condvar; dispatching a
//! parallel section enqueues one lifetime-erased *job* and wakes them — no
//! thread is ever created on the hot path. The calling thread always
//! participates as a worker of its own job, which yields two properties:
//!
//! * **No deadlock under nesting.** A job's submitter drains the job's
//!   work itself, so a parallel section completes even when every resident
//!   worker is busy (or the pool is empty). Resident workers only *help*;
//!   they are never required for progress.
//! * **Graceful degradation.** Requesting more workers than are parked
//!   (oversubscription) just means fewer helpers show up; each worker runs
//!   several of the job's strides sequentially and results are unchanged —
//!   work is keyed by stride id, not by OS thread.
//!
//! [`resize`] implements `Runtime::set_threads`: growth spawns parked
//! workers, shrinkage wakes the excess so they exit after finishing the
//! job they are on. Panics inside a job are caught on whichever thread ran
//! the stride and re-thrown on the submitting thread once the job ends.
//!
//! ## Self-healing and degradation
//!
//! The pool is built to survive its own failure modes (see
//! [`crate::faults`] for the failpoints that exercise them):
//!
//! * **Worker death.** A panic that escapes the job level (impossible from
//!   stride bodies, which are individually caught — but injectable, and
//!   conceivable from e.g. allocation failure in the loop itself) lands in
//!   [`worker_main`], which records the death and re-enters the loop: the
//!   worker heals in place and the census stays exact. Strides are claimed
//!   atomically and only marked complete after running, so a death never
//!   loses work — unclaimed strides fall to the submitter.
//! * **Spawn failure.** If the OS refuses a thread during growth, the pool
//!   runs with the workers it has; with none at all, every section runs
//!   inline on its submitter (bit-identical, just serial) and a one-time
//!   warning is printed.
//! * **Lock poisoning.** All pool locks recover from poisoning instead of
//!   propagating it: state under them is either append-only bookkeeping or
//!   monotone counters, so a poisoned guard cannot carry a torn update.
//!   Each recovery is counted in [`crate::faults::stats`].

// The single place in the workspace that needs `unsafe`: resident workers
// are `'static` threads, but jobs borrow from the submitter's stack, so the
// body reference is lifetime-erased on dispatch. Soundness rests on one
// invariant — `broadcast` never returns before every stride completed —
// which is the same contract `std::thread::scope` is built on.
#![allow(unsafe_code)]

use crate::{claim, faults};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, OnceLock};

/// A lifetime-erased pointer to a job's per-stride body. The submitter
/// blocks in [`broadcast`] until every stride completed, so the pointee
/// outlives every dereference (the same argument that makes
/// `std::thread::scope` sound).
struct BodyPtr(*const (dyn Fn(usize) + Sync));
// Safety: the pointee is `Sync` (shared calls from any thread are fine)
// and is only dereferenced while the submitting thread keeps it alive.
unsafe impl Send for BodyPtr {}
unsafe impl Sync for BodyPtr {}

/// Completion bookkeeping of one job, guarded by [`Job::progress`].
struct Progress {
    /// Strides that finished running (panicked strides count).
    completed: usize,
    /// First panic payload observed, re-thrown by the submitter.
    panic: Option<Box<dyn Any + Send>>,
}

/// One dispatched parallel section: `workers` strides, each executed
/// exactly once by whichever thread claims it first.
struct Job {
    body: BodyPtr,
    /// Total strides; also the claim multiplier basis.
    workers: usize,
    /// Claim multiplier every stride runs under (submitter's claim at
    /// dispatch times `workers`), so nested sections see the divided
    /// budget no matter which thread hosts them.
    child_claim: usize,
    /// Next unclaimed stride id; `>= workers` once exhausted.
    next_stride: AtomicUsize,
    progress: Mutex<Progress>,
    /// Signalled when `completed` reaches `workers`.
    done: Condvar,
}

impl Job {
    /// Locks the progress record, recovering from poisoning: `Progress`
    /// is a counter plus an owned payload slot, both updated in single
    /// statements, so a poisoned guard cannot expose a torn state.
    fn lock_progress(&self) -> MutexGuard<'_, Progress> {
        self.progress.lock().unwrap_or_else(|e| {
            faults::note(faults::Degradation::LockRecovery);
            self.progress.clear_poison();
            e.into_inner()
        })
    }

    /// Claims and runs strides until none remain. Called by the submitter
    /// and by any helping resident worker; safe to call after exhaustion
    /// (returns immediately without touching `body`).
    fn run_strides(&self) {
        loop {
            let stride = self.next_stride.fetch_add(1, Ordering::Relaxed);
            if stride >= self.workers {
                return;
            }
            claim::set(self.child_claim);
            // Safety: `broadcast` does not return before `completed ==
            // workers`, and `completed` is only incremented after the body
            // call below returns — the pointee is alive here.
            let body = unsafe { &*self.body.0 };
            let result = catch_unwind(AssertUnwindSafe(|| {
                faults::maybe_panic("exec.stride");
                body(stride)
            }));
            let mut progress = self.lock_progress();
            if let Err(payload) = result {
                if progress.panic.is_none() {
                    progress.panic = Some(payload);
                }
            }
            progress.completed += 1;
            if progress.completed == self.workers {
                self.done.notify_all();
            }
        }
    }

    /// `true` once every stride has been claimed (not necessarily
    /// completed) — helpers skip exhausted jobs without touching `body`.
    fn exhausted(&self) -> bool {
        self.next_stride.load(Ordering::Relaxed) >= self.workers
    }
}

struct PoolState {
    /// Dispatched jobs that may still have unclaimed strides. Submitters
    /// push on dispatch and remove after completion.
    jobs: Vec<Arc<Job>>,
    /// Resident workers the pool should keep (`Runtime::threads() - 1`;
    /// the submitting thread is the implicit extra worker).
    target: usize,
    /// Resident workers currently alive.
    alive: usize,
}

/// The pool singleton: a job queue plus the condvar workers park on.
struct Pool {
    state: Mutex<PoolState>,
    work: Condvar,
}

/// Locks the pool state, recovering from poisoning: the state is a job
/// list mutated by single push/retain calls plus two counters, so a
/// poisoned guard cannot expose a torn update.
fn lock_state(p: &Pool) -> MutexGuard<'_, PoolState> {
    p.state.lock().unwrap_or_else(|e| {
        faults::note(faults::Degradation::LockRecovery);
        p.state.clear_poison();
        e.into_inner()
    })
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    static STARTED: Once = Once::new();
    let pool = POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            jobs: Vec::new(),
            target: 0,
            alive: 0,
        }),
        work: Condvar::new(),
    });
    // Size the pool from the configured worker count once, outside the
    // OnceLock init (Runtime::threads may itself race to resolve). Must
    // not go through `resize` → `pool()` — `call_once` is not re-entrant.
    STARTED.call_once(|| resize_on(pool, crate::Runtime::threads().saturating_sub(1)));
    pool
}

/// Resident-worker entry point: runs [`worker_loop`] and heals the worker
/// in place if a panic ever escapes it. Stride-body panics are caught per
/// stride inside the job, so an escaping panic means the loop machinery
/// itself died (injected via the `pool.worker` failpoint); the worker
/// counts the death and re-enters — `alive` still counts this thread, so
/// the census stays exact and the pool returns to full strength without
/// spawning.
fn worker_main(pool: &'static Pool) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(pool))) {
            // Normal exit: the pool shrank and `worker_loop` already
            // decremented `alive` for this thread.
            Ok(()) => return,
            Err(_) => {
                faults::note(faults::Degradation::WorkerDeath);
                faults::note(faults::Degradation::WorkerRespawn);
            }
        }
    }
}

/// Parked-worker main loop: help any job with unclaimed strides, park
/// otherwise, exit when the pool shrank below the live count.
fn worker_loop(pool: &'static Pool) {
    let mut state = lock_state(pool);
    loop {
        if state.alive > state.target {
            state.alive -= 1;
            return;
        }
        let job = state.jobs.iter().find(|j| !j.exhausted()).map(Arc::clone);
        match job {
            Some(job) => {
                drop(state);
                // Worker-death injection point: the panic unwinds past the
                // whole loop (no stride claimed yet, no lock held) and is
                // healed by `worker_main`.
                faults::maybe_panic("pool.worker");
                job.run_strides();
                state = lock_state(pool);
            }
            None => {
                state = pool.work.wait(state).unwrap_or_else(|e| {
                    faults::note(faults::Degradation::LockRecovery);
                    pool.state.clear_poison();
                    e.into_inner()
                });
            }
        }
    }
}

/// Sets the resident worker count (the public knob is
/// `Runtime::set_threads`, which passes `threads - 1`). Growth spawns
/// parked workers immediately; shrinkage wakes the excess, which exit
/// after the job they are currently helping, so in-flight sections finish
/// undisturbed.
pub(crate) fn resize(target: usize) {
    resize_on(pool(), target);
}

/// Warns exactly once per process when parallel sections degrade to
/// inline serial execution because no resident worker could be kept.
fn warn_pool_down_once() {
    static WARNED: Once = Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "morpheus: worker pool unavailable; \
             running parallel sections inline on the caller"
        );
    });
}

fn resize_on(p: &'static Pool, target: usize) {
    let mut state = lock_state(p);
    state.target = target;
    while state.alive < state.target {
        let spawned = if faults::check("pool.spawn").is_some() {
            Err(std::io::Error::other("injected spawn failure"))
        } else {
            std::thread::Builder::new()
                .name("morpheus-pool-worker".into())
                .spawn(|| worker_main(pool()))
        };
        match spawned {
            Ok(_) => state.alive += 1,
            // Out of threads: run with what we have — broadcast degrades
            // to fewer helpers, never to incorrect results.
            Err(_) => {
                faults::note(faults::Degradation::PoolSpawnFailure);
                if state.alive == 0 {
                    warn_pool_down_once();
                }
                break;
            }
        }
    }
    if state.alive > state.target {
        p.work.notify_all();
    }
}

/// Runs `body(stride)` exactly once for every stride in `0..workers`,
/// distributing strides over the calling thread and any idle resident
/// workers, and returns when all strides completed. Every stride runs
/// under the nested-claim multiplier `claim::current() * workers`. The
/// first panic among the strides is re-thrown here after the section ends.
///
/// Dispatch itself can degrade: when the `pool.dispatch` failpoint fires
/// an error kind, or the pool has no live workers while some were
/// requested, the section is not published and the submitter runs every
/// stride inline — bit-identical results, counted as a serial fallback.
pub(crate) fn broadcast(workers: usize, body: &(dyn Fn(usize) + Sync)) {
    debug_assert!(workers >= 2, "broadcast: single-stride jobs run inline");
    // A `panic` kind unwinds on the submitter here, before anything is
    // published; any other kind makes dispatch report "unavailable".
    let dispatch_ok = faults::fire("pool.dispatch").is_none();
    let child_claim = claim::current().saturating_mul(workers);
    // Safety: the raw pointer is dereferenced only by `Job::run_strides`
    // for strides claimed before this function returns; we block on the
    // completion condvar below, so `body` outlives every use.
    let erased: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&_, &'static (dyn Fn(usize) + Sync)>(body) };
    let job = Arc::new(Job {
        body: BodyPtr(erased),
        workers,
        child_claim,
        next_stride: AtomicUsize::new(0),
        progress: Mutex::new(Progress {
            completed: 0,
            panic: None,
        }),
        done: Condvar::new(),
    });
    let p = pool();
    let published = {
        let mut state = lock_state(p);
        if !dispatch_ok {
            faults::note(faults::Degradation::PoolSerialFallback);
            false
        } else if state.alive > 0 {
            state.jobs.push(Arc::clone(&job));
            p.work.notify_all();
            true
        } else {
            // No helpers exist; skip the queue round-trip. With a zero
            // target this is the configured 1-thread mode, not a
            // degradation — only a pool that *should* have workers but
            // has none counts as a serial fallback.
            if state.target > 0 {
                faults::note(faults::Degradation::PoolSerialFallback);
                warn_pool_down_once();
            }
            false
        }
    };
    // The submitter is always a worker of its own job — progress never
    // depends on a resident worker being free.
    claim::scoped(claim::current(), || job.run_strides());
    let panic = {
        let mut progress = job.lock_progress();
        while progress.completed < job.workers {
            progress = job.done.wait(progress).unwrap_or_else(|e| {
                faults::note(faults::Degradation::LockRecovery);
                job.progress.clear_poison();
                e.into_inner()
            });
        }
        progress.panic.take()
    };
    if published {
        let mut state = lock_state(p);
        state.jobs.retain(|j| !Arc::ptr_eq(j, &job));
    }
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn broadcast_runs_every_stride_once() {
        let hits = AtomicUsize::new(0);
        broadcast(5, &|stride| {
            hits.fetch_add(stride + 1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1 + 2 + 3 + 4 + 5);
    }

    #[test]
    fn broadcast_completes_when_pool_is_empty() {
        // Even with zero resident workers the submitter drains the job.
        let before = crate::Runtime::threads();
        resize(0);
        let hits = AtomicUsize::new(0);
        broadcast(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        resize(before.saturating_sub(1));
    }

    #[test]
    fn nested_broadcast_does_not_deadlock() {
        let hits = AtomicUsize::new(0);
        broadcast(3, &|_| {
            broadcast(3, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn broadcast_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            broadcast(4, &|stride| {
                if stride == 2 {
                    panic!("stride failure");
                }
            });
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "stride failure");
    }

    #[test]
    fn injected_dispatch_fault_degrades_to_inline_serial() {
        let _guard = faults::exclusive();
        let fallbacks_before = faults::stats().pool_serial_fallbacks;
        faults::configure("pool.dispatch=error").unwrap();
        let hits = AtomicUsize::new(0);
        broadcast(6, &|stride| {
            hits.fetch_add(stride + 1, Ordering::Relaxed);
        });
        faults::clear();
        assert_eq!(
            hits.load(Ordering::Relaxed),
            21,
            "results must be identical"
        );
        assert!(faults::stats().pool_serial_fallbacks > fallbacks_before);
    }

    #[test]
    fn injected_spawn_failure_leaves_a_working_degraded_pool() {
        let _guard = faults::exclusive();
        let before = crate::Runtime::threads();
        resize(0);
        let failures_before = faults::stats().pool_spawn_failures;
        faults::configure("pool.spawn=error").unwrap();
        resize(2); // every spawn fails: pool stays empty
        faults::clear();
        assert!(faults::stats().pool_spawn_failures > failures_before);
        let hits = AtomicUsize::new(0);
        broadcast(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(
            hits.load(Ordering::Relaxed),
            4,
            "inline serial must still run"
        );
        resize(before.saturating_sub(1));
    }

    #[test]
    fn dead_workers_heal_and_the_pool_keeps_working() {
        let _guard = faults::exclusive();
        let before = crate::Runtime::threads();
        let deaths_before = faults::stats().worker_deaths;
        faults::configure("pool.worker=panic(times=2)").unwrap();
        // Workers race the submitter for jobs; strides sleep so helpers
        // reliably claim some. Loop until the failpoint demonstrably
        // fired (a concurrent test may transiently shrink the pool).
        for _ in 0..200 {
            resize(3);
            let hits = AtomicUsize::new(0);
            broadcast(4, &|_| {
                std::thread::sleep(Duration::from_millis(1));
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 4, "no stride may be lost");
            if faults::fired_count("pool.worker") >= 2 {
                break;
            }
        }
        let fired = faults::fired_count("pool.worker");
        faults::clear();
        assert_eq!(fired, 2, "worker-death failpoint must have fired");
        let s = faults::stats();
        assert!(
            s.worker_deaths >= deaths_before + 2,
            "deaths must be counted"
        );
        assert!(
            s.worker_respawns >= s.worker_deaths - deaths_before,
            "heals must be counted"
        );
        // The healed pool still produces correct results.
        let hits = AtomicUsize::new(0);
        broadcast(8, &|stride| {
            hits.fetch_add(stride, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 28);
        resize(before.saturating_sub(1));
    }
}
