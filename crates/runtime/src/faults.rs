//! Deterministic failpoint registry and degradation counters: the
//! engineered failure model of the runtime.
//!
//! A **failpoint** is a named site in production code where a fault can be
//! injected on demand — a panic, a simulated I/O error, a feature probe
//! reporting "unavailable", or an artificial delay. With no failpoints
//! configured the registry is *disarmed* and every check is a single
//! relaxed atomic load (measurably free on the hot paths it guards; the
//! `kernels`/`pkfk_operators` bench gate enforces that). Configuration
//! comes from the `MORPHEUS_FAILPOINTS` environment variable (read once,
//! at first check) or programmatically via [`configure`] / [`clear`] —
//! the test hooks the chaos suite uses.
//!
//! ## Spec grammar
//!
//! ```text
//! MORPHEUS_FAILPOINTS="pool.dispatch=panic(0.01,seed=42);profile.write=io_error;simd.detect=off"
//!
//! spec    := point (';' point)*
//! point   := name '=' kind [ '(' arg (',' arg)* ')' ]
//! kind    := panic | error | io_error | off | sleep
//! arg     := <float in [0,1]>      probability (default 1.0; sleep: the
//!                                  first bare number is milliseconds)
//!          | seed '=' <u64>        decision-sequence seed (default 0)
//!          | times '=' <u64>       stop firing after this many fires
//!          | ms '=' <u64>          sleep duration (sleep only)
//! ```
//!
//! Firing is **deterministic**: each failpoint keeps a hit counter, and
//! hit `i` fires iff `splitmix64(seed, i)` maps below the probability —
//! the same schedule every run, independent of wall clock (there is no
//! entropy anywhere in this module).
//!
//! ## Named failpoints
//!
//! | name | site | kinds honored |
//! |---|---|---|
//! | `pool.dispatch` | [`crate::pool`] job dispatch | `panic` unwinds on the submitter before anything is published; any other kind makes dispatch report "unavailable", degrading the section to inline serial execution (bit-identical results) |
//! | `pool.worker` | worker loop, after claiming a job | `panic` kills the resident worker, which the pool detects and heals (see [`crate::pool`]) |
//! | `pool.spawn` | worker spawn in `set_threads` growth | any kind makes the spawn fail, exercising the degraded (fewer-helpers / inline-serial) pool |
//! | `exec.stride` | every executor stride body | `panic` (contained like any stride panic and re-thrown on the submitter), `sleep` |
//! | `profile.calibrate` | start of `MachineProfile::calibrate` | `sleep` simulates a hostile machine (trips the calibration watchdog), `panic` a crashing calibration |
//! | `profile.write` | between the temp-file write and the atomic rename of profile persistence | `io_error`/`error` simulate a failed write (previous file intact), `panic` a crash inside the window (previous file still intact — that is the point of the rename) |
//! | `simd.detect` | AVX2 probe of the GEMM/reduction dispatch | any kind makes the probe report "no AVX2", demoting to the bit-identical scalar-FMA tier |
//! | `plan.cache.lookup` / `plan.cache.insert` | inside the plan-cache lock | `panic` poisons the cache mutex; the next access recovers by clearing |
//! | `planner.memo` | join-memo materialization closure | `panic` aborts the memoized join; the `OnceLock` stays empty and the next call recomputes |
//! | `spill.write` | between the temp-file write and the atomic rename of a chunk spill file | `io_error`/`error` fail the spill; the chunk stays resident in memory (results unchanged, budget overrun) |
//! | `spill.map` | after the rename, before the spill file is memory-mapped | any kind fails the mapping; the already-written file is removed and the chunk stays resident |
//!
//! Alongside the failpoints, this module owns the process-wide
//! **degradation counters** ([`stats`]): every self-healing or fallback
//! event anywhere in the workspace — worker deaths and respawns, inline
//! serial fallbacks, calibration timeouts, failed profile writes,
//! poisoned-lock recoveries, SIMD demotions — is [`note`]d here so
//! operators can observe exactly which ladders the runtime walked down.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Environment variable holding the failpoint spec (read once, at the
/// first check; [`configure`]/[`clear`] override it afterwards).
pub const FAILPOINTS_ENV: &str = "MORPHEUS_FAILPOINTS";

/// The fault a fired failpoint injects. How each kind is honored is up to
/// the site (see the module docs table); sites ignore kinds that make no
/// sense for them, so a misconfigured kind degrades to "no fault", never
/// to undefined behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind at the site (delivered hook-silently via
    /// [`std::panic::resume_unwind`] with an [`InjectedPanic`] payload).
    Panic,
    /// A generic structured failure the site maps to its error channel.
    Error,
    /// A simulated I/O failure.
    IoError,
    /// A feature probe reports "unavailable".
    Off,
    /// Delay the site by this many milliseconds, then proceed normally.
    Sleep(u64),
}

/// Panic payload of injected panics, so tests can tell an injected fault
/// from a genuine bug ([`is_injected_panic`]).
#[derive(Debug)]
pub struct InjectedPanic {
    /// Name of the failpoint that fired.
    pub failpoint: String,
}

/// Downcasts a caught panic payload to the injected-fault marker,
/// returning the failpoint name when it is one.
pub fn is_injected_panic(payload: &(dyn std::any::Any + Send)) -> Option<&str> {
    payload
        .downcast_ref::<InjectedPanic>()
        .map(|p| p.failpoint.as_str())
}

/// One configured failpoint.
struct FailPoint {
    kind: FaultKind,
    /// Fire probability per hit, in `[0, 1]`.
    prob: f64,
    /// Seed mixed into the per-hit decision.
    seed: u64,
    /// Stop firing after this many fires (`None` = unlimited).
    times: Option<u64>,
    /// Checks observed (the deterministic decision-sequence index).
    hits: AtomicU64,
    /// Fires delivered.
    fired: AtomicU64,
}

/// Armed state: `0` unresolved (env not read yet), `1` armed, `2`
/// disarmed. Disarmed is the steady state of production processes, and
/// the only cost a disarmed check pays is this one load.
static STATE: AtomicU8 = AtomicU8::new(0);

fn registry() -> &'static Mutex<HashMap<String, FailPoint>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, FailPoint>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Locks the registry, recovering from poisoning. The map is only
/// mutated wholesale under [`configure`]/[`clear`] and its entries only
/// through atomics, so a poisoned guard cannot carry a torn update.
fn lock_registry() -> MutexGuard<'static, HashMap<String, FailPoint>> {
    let m = registry();
    m.lock().unwrap_or_else(|e| {
        m.clear_poison();
        e.into_inner()
    })
}

/// `splitmix64`: a fixed, high-quality mix of (seed, hit index) into a
/// uniform u64 — the entire source of "randomness" in firing decisions,
/// chosen so a given spec fires on the exact same hit indices every run.
fn mix(seed: u64, hit: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(hit.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FailPoint {
    /// Decides (and records) whether this check fires.
    fn decide(&self) -> Option<FaultKind> {
        let hit = self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(limit) = self.times {
            if self.fired.load(Ordering::Relaxed) >= limit {
                return None;
            }
        }
        let fire = if self.prob >= 1.0 {
            true
        } else if self.prob <= 0.0 {
            false
        } else {
            // Upper 53 bits as a uniform fraction in [0, 1).
            ((mix(self.seed, hit) >> 11) as f64) / ((1u64 << 53) as f64) < self.prob
        };
        if fire {
            self.fired.fetch_add(1, Ordering::Relaxed);
            INJECTED.fetch_add(1, Ordering::Relaxed);
            Some(self.kind)
        } else {
            None
        }
    }
}

/// Checks the failpoint `name`, returning the fault to inject if it fires
/// this hit. Pure decision — no side effect beyond the counters; the call
/// site translates the kind into its own failure channel. Disarmed cost:
/// one relaxed atomic load.
#[inline]
pub fn check(name: &str) -> Option<FaultKind> {
    match STATE.load(Ordering::Relaxed) {
        2 => None,
        1 => check_armed(name),
        _ => {
            resolve_env();
            check(name)
        }
    }
}

#[cold]
fn check_armed(name: &str) -> Option<FaultKind> {
    lock_registry().get(name).and_then(FailPoint::decide)
}

/// Checks `name` and *applies* the generic kinds: `panic` unwinds with an
/// [`InjectedPanic`] payload (hook-silent, like a re-thrown panic),
/// `sleep` blocks for its duration and then proceeds (returns `None`).
/// `error` / `io_error` / `off` are returned for the site to translate.
#[inline]
pub fn fire(name: &str) -> Option<FaultKind> {
    match check(name)? {
        FaultKind::Panic => inject_panic(name),
        FaultKind::Sleep(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        other => Some(other),
    }
}

/// [`fire`]s `name` for its panic/sleep effects only, ignoring error
/// kinds — for infallible sites whose only injectable fault is death.
#[inline]
pub fn maybe_panic(name: &str) {
    let _ = fire(name);
}

/// Unwinds with the injected-fault payload. `resume_unwind` skips the
/// panic hook, so injected faults do not spam stderr with backtraces —
/// the unwind itself behaves exactly like any stride panic.
fn inject_panic(name: &str) -> ! {
    std::panic::resume_unwind(Box::new(InjectedPanic {
        failpoint: name.to_string(),
    }))
}

/// Resolves the env spec exactly once. A malformed spec warns and
/// disarms — fault injection must never take a process down by itself.
fn resolve_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let spec = std::env::var(FAILPOINTS_ENV).unwrap_or_default();
        if spec.trim().is_empty() {
            STATE.store(2, Ordering::Relaxed);
            return;
        }
        if let Err(e) = configure(&spec) {
            eprintln!("morpheus: ignoring {FAILPOINTS_ENV}: {e}");
            STATE.store(2, Ordering::Relaxed);
        }
    });
    // A racing thread that lost call_once still needs a resolved STATE.
    if STATE.load(Ordering::Relaxed) == 0 {
        STATE.store(2, Ordering::Relaxed);
    }
}

/// Replaces the whole failpoint configuration (the programmatic test
/// hook; also used to apply [`FAILPOINTS_ENV`]). An empty spec disarms.
/// On a parse error nothing changes and the previous configuration stays
/// in force.
pub fn configure(spec: &str) -> Result<(), String> {
    let parsed = parse_spec(spec)?;
    let mut map = lock_registry();
    map.clear();
    let armed = !parsed.is_empty();
    for (name, point) in parsed {
        map.insert(name, point);
    }
    STATE.store(if armed { 1 } else { 2 }, Ordering::Relaxed);
    Ok(())
}

/// Disarms every failpoint (the registry is emptied; degradation
/// counters are kept — use [`reset_stats`] for those). After `clear`,
/// checks cost one atomic load again.
pub fn clear() {
    lock_registry().clear();
    STATE.store(2, Ordering::Relaxed);
}

/// Fires delivered by the failpoint `name` so far (0 when unknown).
pub fn fired_count(name: &str) -> u64 {
    lock_registry()
        .get(name)
        .map(|p| p.fired.load(Ordering::Relaxed))
        .unwrap_or(0)
}

fn parse_spec(spec: &str) -> Result<Vec<(String, FailPoint)>, String> {
    let mut out = Vec::new();
    for point in spec.split(';') {
        let point = point.trim();
        if point.is_empty() {
            continue;
        }
        let (name, action) = point
            .split_once('=')
            .ok_or_else(|| format!("failpoint {point:?}: expected name=action"))?;
        let (name, action) = (name.trim(), action.trim());
        if name.is_empty() {
            return Err(format!("failpoint {point:?}: empty name"));
        }
        let (kind_str, args) = match action.split_once('(') {
            None => (action, ""),
            Some((k, rest)) => (
                k.trim(),
                rest.strip_suffix(')')
                    .ok_or_else(|| format!("failpoint {name}: unclosed '(' in {action:?}"))?,
            ),
        };
        let mut prob = 1.0f64;
        let mut seed = 0u64;
        let mut times = None;
        let mut sleep_ms: Option<u64> = None;
        let mut bare_seen = 0usize;
        for arg in args.split(',') {
            let arg = arg.trim();
            if arg.is_empty() {
                continue;
            }
            if let Some((key, value)) = arg.split_once('=') {
                let (key, value) = (key.trim(), value.trim());
                let parse_u64 = |v: &str| {
                    v.parse::<u64>()
                        .map_err(|_| format!("failpoint {name}: non-integer {key}={v:?}"))
                };
                match key {
                    "seed" => seed = parse_u64(value)?,
                    "times" => times = Some(parse_u64(value)?),
                    "ms" => sleep_ms = Some(parse_u64(value)?),
                    "p" | "prob" => {
                        prob = value
                            .parse::<f64>()
                            .map_err(|_| format!("failpoint {name}: non-numeric prob {value:?}"))?
                    }
                    other => return Err(format!("failpoint {name}: unknown arg {other:?}")),
                }
            } else {
                // Bare number: milliseconds first for sleep, probability
                // otherwise (sleep's second bare number is a probability).
                bare_seen += 1;
                if kind_str == "sleep" && bare_seen == 1 {
                    sleep_ms = Some(
                        arg.parse::<u64>()
                            .map_err(|_| format!("failpoint {name}: non-integer ms {arg:?}"))?,
                    );
                } else {
                    prob = arg
                        .parse::<f64>()
                        .map_err(|_| format!("failpoint {name}: non-numeric prob {arg:?}"))?;
                }
            }
        }
        if !(0.0..=1.0).contains(&prob) {
            return Err(format!(
                "failpoint {name}: probability {prob} outside [0, 1]"
            ));
        }
        let kind = match kind_str {
            "panic" => FaultKind::Panic,
            "error" => FaultKind::Error,
            "io_error" => FaultKind::IoError,
            "off" => FaultKind::Off,
            "sleep" => FaultKind::Sleep(sleep_ms.unwrap_or(0)),
            other => {
                return Err(format!(
                    "failpoint {name}: unknown kind {other:?} \
                     (expected panic|error|io_error|off|sleep)"
                ))
            }
        };
        out.push((
            name.to_string(),
            FailPoint {
                kind,
                prob,
                seed,
                times,
                hits: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            },
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Degradation counters
// ---------------------------------------------------------------------

static INJECTED: AtomicU64 = AtomicU64::new(0);
static WORKER_DEATHS: AtomicU64 = AtomicU64::new(0);
static WORKER_RESPAWNS: AtomicU64 = AtomicU64::new(0);
static POOL_SPAWN_FAILURES: AtomicU64 = AtomicU64::new(0);
static POOL_SERIAL_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static LOCK_RECOVERIES: AtomicU64 = AtomicU64::new(0);
static CALIBRATION_TIMEOUTS: AtomicU64 = AtomicU64::new(0);
static PROFILE_WRITE_FAILURES: AtomicU64 = AtomicU64::new(0);
static SIMD_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static SERVE_BATCH_ABORTS: AtomicU64 = AtomicU64::new(0);
static SPILL_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// A self-healing or fallback event somewhere in the workspace, recorded
/// via [`note`]. Rung names match the degradation ladder documented in
/// the README's "Failure model" section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// A resident pool worker died (a panic escaped past the job level).
    WorkerDeath,
    /// A dead worker was healed (the pool runs at full strength again).
    WorkerRespawn,
    /// Spawning a pool worker failed; the pool runs with fewer helpers.
    PoolSpawnFailure,
    /// A parallel section ran inline on the caller because dispatch was
    /// unavailable (no live workers while some were requested, or an
    /// injected dispatch fault). Results are identical, only slower.
    PoolSerialFallback,
    /// A poisoned lock was recovered (cleared/recomputed) instead of
    /// propagating the poison.
    LockRecovery,
    /// Calibration missed its watchdog deadline (or died); built-in
    /// fallback rates are in use and were *not* persisted.
    CalibrationTimeout,
    /// Persisting the machine profile failed; planning continues on the
    /// in-memory rates.
    ProfileWriteFailure,
    /// The SIMD feature probe reported unavailable; kernels run on the
    /// scalar tier.
    SimdFallback,
    /// A scoring-service batch evaluation panicked; every request in the
    /// batch received a structured error (never a partial or corrupted
    /// response) and the scorer kept serving.
    ServeBatchAbort,
    /// Spilling a chunk to disk failed (write, rename, or mmap); the
    /// chunk stays resident in memory. Results are identical — the
    /// resident budget is simply overrun.
    SpillFallback,
}

/// Records a degradation event (called by the layers as they fall back).
pub fn note(d: Degradation) {
    let counter = match d {
        Degradation::WorkerDeath => &WORKER_DEATHS,
        Degradation::WorkerRespawn => &WORKER_RESPAWNS,
        Degradation::PoolSpawnFailure => &POOL_SPAWN_FAILURES,
        Degradation::PoolSerialFallback => &POOL_SERIAL_FALLBACKS,
        Degradation::LockRecovery => &LOCK_RECOVERIES,
        Degradation::CalibrationTimeout => &CALIBRATION_TIMEOUTS,
        Degradation::ProfileWriteFailure => &PROFILE_WRITE_FAILURES,
        Degradation::SimdFallback => &SIMD_FALLBACKS,
        Degradation::ServeBatchAbort => &SERVE_BATCH_ABORTS,
        Degradation::SpillFallback => &SPILL_FALLBACKS,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the process-wide fault/degradation counters. All zeros in
/// a fault-free, healthy process — CI asserts exactly that on unfaulted
/// runs, which also catches accidentally always-on failpoints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults delivered by fired failpoints (all kinds, all points).
    pub injected: u64,
    /// Resident workers that died with a panic escaping the job level.
    pub worker_deaths: u64,
    /// Dead workers healed back to service.
    pub worker_respawns: u64,
    /// Failed worker spawns (pool running under strength).
    pub pool_spawn_failures: u64,
    /// Parallel sections executed inline because dispatch was down.
    pub pool_serial_fallbacks: u64,
    /// Poisoned locks recovered by clearing/recomputing.
    pub lock_recoveries: u64,
    /// Calibrations abandoned to the built-in fallback rates.
    pub calibration_timeouts: u64,
    /// Machine-profile writes that failed (best-effort persistence).
    pub profile_write_failures: u64,
    /// SIMD probes that reported unavailable (scalar-tier execution).
    pub simd_fallbacks: u64,
    /// Scoring-service batches aborted by a panic and converted into
    /// structured per-request errors.
    pub serve_batch_aborts: u64,
    /// Chunk spills that failed and fell back to resident in-memory
    /// chunks (results unchanged, budget overrun).
    pub spill_fallbacks: u64,
}

/// Reads the process-wide fault/degradation counters.
pub fn stats() -> FaultStats {
    FaultStats {
        injected: INJECTED.load(Ordering::Relaxed),
        worker_deaths: WORKER_DEATHS.load(Ordering::Relaxed),
        worker_respawns: WORKER_RESPAWNS.load(Ordering::Relaxed),
        pool_spawn_failures: POOL_SPAWN_FAILURES.load(Ordering::Relaxed),
        pool_serial_fallbacks: POOL_SERIAL_FALLBACKS.load(Ordering::Relaxed),
        lock_recoveries: LOCK_RECOVERIES.load(Ordering::Relaxed),
        calibration_timeouts: CALIBRATION_TIMEOUTS.load(Ordering::Relaxed),
        profile_write_failures: PROFILE_WRITE_FAILURES.load(Ordering::Relaxed),
        simd_fallbacks: SIMD_FALLBACKS.load(Ordering::Relaxed),
        serve_batch_aborts: SERVE_BATCH_ABORTS.load(Ordering::Relaxed),
        spill_fallbacks: SPILL_FALLBACKS.load(Ordering::Relaxed),
    }
}

/// Zeroes the fault/degradation counters (test hook).
pub fn reset_stats() {
    for c in [
        &INJECTED,
        &WORKER_DEATHS,
        &WORKER_RESPAWNS,
        &POOL_SPAWN_FAILURES,
        &POOL_SERIAL_FALLBACKS,
        &LOCK_RECOVERIES,
        &CALIBRATION_TIMEOUTS,
        &PROFILE_WRITE_FAILURES,
        &SIMD_FALLBACKS,
        &SERVE_BATCH_ABORTS,
        &SPILL_FALLBACKS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

/// Serializes tests that [`configure`]/[`clear`] failpoints. The
/// registry and the counters are process-global, so concurrent `#[test]`s
/// in one binary would otherwise reconfigure each other mid-run; every
/// fault-injecting test holds this guard for its duration.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| {
        GATE.clear_poison();
        e.into_inner()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_checks_are_none_and_cheap() {
        let _guard = exclusive();
        clear();
        assert_eq!(check("pool.dispatch"), None);
        assert_eq!(check("anything.else"), None);
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let points = parse_spec(
            "pool.dispatch=panic(0.01,seed=42); profile.write=io_error; \
             simd.detect=off;exec.stride=sleep(25,0.5,seed=7);x=error(times=3)",
        )
        .unwrap();
        assert_eq!(points.len(), 5);
        let by_name: HashMap<_, _> = points.into_iter().collect();
        let p = &by_name["pool.dispatch"];
        assert_eq!(p.kind, FaultKind::Panic);
        assert!((p.prob - 0.01).abs() < 1e-12);
        assert_eq!(p.seed, 42);
        assert_eq!(by_name["profile.write"].kind, FaultKind::IoError);
        assert_eq!(by_name["simd.detect"].kind, FaultKind::Off);
        let s = &by_name["exec.stride"];
        assert_eq!(s.kind, FaultKind::Sleep(25));
        assert!((s.prob - 0.5).abs() < 1e-12);
        assert_eq!(s.seed, 7);
        assert_eq!(by_name["x"].times, Some(3));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "noequals",
            "=panic",
            "a=explode",
            "a=panic(1.5)",
            "a=panic(-0.1)",
            "a=panic(0.5",
            "a=panic(speed=9)",
            "a=panic(seed=fast)",
        ] {
            assert!(parse_spec(bad).is_err(), "spec {bad:?} must be rejected");
        }
    }

    #[test]
    fn firing_is_deterministic_and_seeded() {
        let _guard = exclusive();
        configure("det=error(0.3,seed=42)").unwrap();
        let run: Vec<bool> = (0..64).map(|_| check("det").is_some()).collect();
        // Same spec, fresh counters: the exact same schedule.
        configure("det=error(0.3,seed=42)").unwrap();
        let rerun: Vec<bool> = (0..64).map(|_| check("det").is_some()).collect();
        assert_eq!(run, rerun);
        let fired = run.iter().filter(|&&f| f).count();
        assert!(
            fired > 4 && fired < 40,
            "p=0.3 over 64 hits fired {fired} times"
        );
        // A different seed produces a different schedule.
        configure("det=error(0.3,seed=43)").unwrap();
        let other: Vec<bool> = (0..64).map(|_| check("det").is_some()).collect();
        assert_ne!(run, other);
        clear();
    }

    #[test]
    fn times_bounds_total_fires() {
        let _guard = exclusive();
        configure("bounded=error(times=2)").unwrap();
        let fired = (0..10).filter(|_| check("bounded").is_some()).count();
        assert_eq!(fired, 2);
        assert_eq!(fired_count("bounded"), 2);
        clear();
    }

    #[test]
    fn fire_panics_with_injected_payload() {
        let _guard = exclusive();
        configure("die=panic").unwrap();
        let payload = std::panic::catch_unwind(|| fire("die")).unwrap_err();
        assert_eq!(is_injected_panic(payload.as_ref()), Some("die"));
        clear();
        // Unknown and disarmed points never panic.
        fire("die");
        maybe_panic("die");
    }

    #[test]
    fn counters_note_and_reset() {
        let _guard = exclusive();
        reset_stats();
        assert_eq!(stats(), FaultStats::default());
        note(Degradation::WorkerDeath);
        note(Degradation::WorkerRespawn);
        note(Degradation::PoolSerialFallback);
        let s = stats();
        assert_eq!(s.worker_deaths, 1);
        assert_eq!(s.worker_respawns, 1);
        assert_eq!(s.pool_serial_fallbacks, 1);
        reset_stats();
        assert_eq!(stats(), FaultStats::default());
    }

    #[test]
    fn configure_error_keeps_previous_config() {
        let _guard = exclusive();
        configure("keep=error").unwrap();
        assert!(configure("broken=wat").is_err());
        assert_eq!(check("keep"), Some(FaultKind::Error));
        clear();
    }
}
