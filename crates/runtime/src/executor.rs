//! The scoped-thread parallel executor shared by every compute layer.

use crate::claim;
use std::sync::mpsc;

/// A thread-pool-free parallel executor.
///
/// Work is distributed over `threads` scoped threads (spawned per call —
/// there is no resident pool to keep alive or shut down); results are
/// collected in index order. With `threads == 1` everything runs inline on
/// the caller thread (deterministic, no spawn overhead), which is also the
/// fallback when only one work item exists.
///
/// Every parallel primitive records its worker count in a thread-local
/// claim multiplier while its workers run, so nested uses of
/// [`crate::Runtime::executor`] see the *remaining* thread budget and the
/// two levels compose without oversubscription.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

impl Executor {
    /// Creates an executor with an explicit worker count (minimum 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A single-threaded executor: everything runs inline on the caller.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A work-splitting granularity for `items` units of work: small enough
    /// that round-robin distribution balances skewed workloads (such as
    /// triangular kernels), large enough to amortize per-chunk overhead.
    pub fn grain(&self, items: usize) -> usize {
        items.div_ceil(self.threads * 4).max(1)
    }

    /// Applies `f` to every index in `0..n`, returning results in index
    /// order. `f` runs concurrently on up to `threads` workers.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n.max(1));
        if workers <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let child_claim = claim::current().saturating_mul(workers);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        std::thread::scope(|scope| {
            for tid in 0..workers {
                let tx = tx.clone();
                let f = &f;
                scope.spawn(move || {
                    claim::set(child_claim);
                    let mut i = tid;
                    while i < n {
                        // A send only fails if the receiver hung up, which
                        // cannot happen while this scope is alive.
                        let _ = tx.send((i, f(i)));
                        i += workers;
                    }
                });
            }
            drop(tx);
            let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
            for (i, v) in rx {
                slots[i] = Some(v);
            }
            // If a worker panicked, its items never arrived and this
            // expect fires; the scope then joins the remaining workers
            // before the panic propagates.
            slots
                .into_iter()
                .map(|s| s.expect("executor: missing chunk result"))
                .collect()
        })
    }

    /// Applies `f` to every index in `0..n` for its side effects, without
    /// collecting results (no `Vec<()>` allocation).
    pub fn for_each<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let workers = self.threads.min(n.max(1));
        if workers <= 1 || n <= 1 {
            (0..n).for_each(f);
            return;
        }
        let child_claim = claim::current().saturating_mul(workers);
        std::thread::scope(|scope| {
            for tid in 0..workers {
                let f = &f;
                scope.spawn(move || {
                    claim::set(child_claim);
                    let mut i = tid;
                    while i < n {
                        f(i);
                        i += workers;
                    }
                });
            }
        });
    }

    /// Applies `f` to every index and reduces the results with `combine`,
    /// starting from `init`.
    ///
    /// Each worker folds its own indices into a private partial result;
    /// the per-worker partials are then tree-combined in worker order, so
    /// the outcome is deterministic for a fixed worker count (and exactly
    /// the sequential fold when `threads == 1`).
    pub fn map_reduce<T, F, R>(&self, n: usize, f: F, init: T, combine: R) -> T
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        let workers = self.threads.min(n.max(1));
        if workers <= 1 || n <= 1 {
            return (0..n).map(f).fold(init, combine);
        }
        let child_claim = claim::current().saturating_mul(workers);
        let mut partials: Vec<T> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|tid| {
                    let f = &f;
                    let combine = &combine;
                    scope.spawn(move || {
                        claim::set(child_claim);
                        let mut acc: Option<T> = None;
                        let mut i = tid;
                        while i < n {
                            let v = f(i);
                            acc = Some(match acc {
                                None => v,
                                Some(a) => combine(a, v),
                            });
                            i += workers;
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(partial) => partial,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        // Tree combine: pairwise rounds over the worker partials, in
        // worker order, until one value remains.
        while partials.len() > 1 {
            let mut next = Vec::with_capacity(partials.len().div_ceil(2));
            let mut it = partials.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(combine(a, b)),
                    None => next.push(a),
                }
            }
            partials = next;
        }
        match partials.pop() {
            Some(v) => combine(init, v),
            None => init,
        }
    }

    /// Splits `data` into chunks of at most `chunk_len` elements and
    /// applies `f(chunk_index, chunk)` to each, distributing chunks
    /// round-robin over the workers.
    ///
    /// Chunk `i` covers `data[i * chunk_len .. (i + 1) * chunk_len]`
    /// (shorter for the last chunk), so callers can recover each chunk's
    /// offset from its index. Because the chunks are disjoint `&mut`
    /// slices, this is the safe-Rust backbone of every band-parallel
    /// kernel in the workspace.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be positive");
        let n_chunks = data.len().div_ceil(chunk_len);
        let workers = self.threads.min(n_chunks.max(1));
        if workers <= 1 || n_chunks <= 1 {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            return;
        }
        let mut assignments: Vec<Vec<(usize, &mut [T])>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            assignments[i % workers].push((i, chunk));
        }
        let child_claim = claim::current().saturating_mul(workers);
        std::thread::scope(|scope| {
            for worker_chunks in assignments {
                let f = &f;
                scope.spawn(move || {
                    claim::set(child_claim);
                    for (i, chunk) in worker_chunks {
                        f(i, chunk);
                    }
                });
            }
        });
    }

    /// Runs two closures concurrently (the second on a scoped worker, the
    /// first on the calling thread) and returns both results.
    pub fn par_join<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if self.threads <= 1 {
            return (fa(), fb());
        }
        let child_claim = claim::current().saturating_mul(2);
        std::thread::scope(|scope| {
            let hb = scope.spawn(move || {
                claim::set(child_claim);
                fb()
            });
            let a = claim::scoped(child_claim, fa);
            let b = match hb.join() {
                Ok(b) => b,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            (a, b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let ex = Executor::new(4);
        let out = ex.map(17, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_single_threaded_path() {
        let ex = Executor::new(1);
        assert_eq!(ex.map(3, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(ex.map(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn map_reduce_sums() {
        let ex = Executor::new(3);
        let total = ex.map_reduce(100, |i| i as u64, 0u64, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn map_reduce_serial_is_sequential_fold() {
        // With one thread the reduction is exactly the sequential fold —
        // the compatibility guarantee the kernels' bit-for-bit tests rely
        // on.
        let ex = Executor::serial();
        let concat = ex.map_reduce(
            5,
            |i| i.to_string(),
            String::new(),
            |a, b| format!("{a}{b}"),
        );
        assert_eq!(concat, "01234");
    }

    #[test]
    fn map_reduce_partials_cover_all_items() {
        for threads in 1..6 {
            let ex = Executor::new(threads);
            let total = ex.map_reduce(57, |i| i as u64 + 1, 0, |a, b| a + b);
            assert_eq!(total, (1..=57).sum::<u64>(), "threads = {threads}");
        }
    }

    #[test]
    fn for_each_visits_every_index() {
        let hits = AtomicUsize::new(0);
        Executor::new(4).for_each(33, |i| {
            hits.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), (1..=33).sum::<usize>());
    }

    #[test]
    fn par_chunks_mut_covers_disjoint_bands() {
        let mut data = vec![0usize; 103];
        Executor::new(4).par_chunks_mut(&mut data, 10, |ci, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = ci * 10 + off;
            }
        });
        // Every element was written exactly once with its global index.
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn par_chunks_mut_serial_matches() {
        let mut a = vec![1.0f64; 37];
        let mut b = a.clone();
        let f = |ci: usize, chunk: &mut [f64]| {
            for v in chunk.iter_mut() {
                *v += ci as f64;
            }
        };
        Executor::new(1).par_chunks_mut(&mut a, 5, f);
        Executor::new(5).par_chunks_mut(&mut b, 5, f);
        assert_eq!(a, b);
    }

    #[test]
    fn par_join_returns_both() {
        let (a, b) = Executor::new(2).par_join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
        let (a, b) = Executor::serial().par_join(|| 40 + 2, || vec![1, 2]);
        assert_eq!(a, 42);
        assert_eq!(b, vec![1, 2]);
    }

    #[test]
    fn default_has_at_least_one_thread() {
        assert!(Executor::default().threads() >= 1);
    }

    #[test]
    fn grain_is_positive_and_splits_work() {
        let ex = Executor::new(4);
        assert_eq!(ex.grain(0), 1);
        assert!(ex.grain(1000) <= 1000usize.div_ceil(4));
        assert!(Executor::serial().grain(7) >= 1);
    }

    #[test]
    #[should_panic(expected = "executor:")]
    fn worker_panics_propagate() {
        Executor::new(2).map(4, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn map_reduce_worker_panics_propagate() {
        Executor::new(2).map_reduce(
            4,
            |i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            },
            0,
            |a, b| a + b,
        );
    }

    #[test]
    fn parallel_and_serial_agree() {
        let serial = Executor::new(1).map(25, |i| (i * 31) % 7);
        let parallel = Executor::new(8).map(25, |i| (i * 31) % 7);
        assert_eq!(serial, parallel);
    }
}
