//! The parallel executor shared by every compute layer, dispatching onto
//! the process-resident worker pool.

use crate::{pool, Runtime};
use std::sync::Mutex;

/// A parallel executor backed by the resident worker pool.
///
/// Work is distributed over `threads` *strides*; the calling thread always
/// runs strides itself and parked pool workers pick up the rest, so
/// dispatch never creates a thread (see [`crate::pool`]). With
/// `threads == 1` everything runs inline on the caller (deterministic, no
/// dispatch overhead), which is also the fallback when only one work item
/// exists. Requesting more strides than resident workers exist is fine —
/// the surplus strides run sequentially on whichever threads are available
/// and results are unchanged.
///
/// Every parallel primitive records its stride count in a thread-local
/// claim multiplier while its strides run, so nested uses of
/// [`crate::Runtime::executor`] see the *remaining* thread budget and the
/// two levels compose without oversubscription.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

/// Unwraps a mutex that can only be poisoned if a stride panicked — in
/// which case [`pool::broadcast`] already re-threw before results are
/// read, so recovering the inner value is always sound here.
fn into_ok<T>(m: Mutex<T>) -> T {
    m.into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Locks a per-stride slot inside a running section.
///
/// Unwrap audit: every `Mutex` this touches is owned by exactly one
/// stride, each stride is claimed by exactly one thread, and panics in
/// stride bodies are caught *before* the slot lock is taken again — so
/// the lock is never contended and can never be observed poisoned here.
/// This is a programmer-error invariant of the executor, not a state
/// reachable from user input or I/O, hence `unwrap` rather than a
/// `MorpheusError` return.
fn lock_slot<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock()
        .expect("executor: per-stride slot lock poisoned (single-claimant invariant broken)")
}

impl Executor {
    /// Creates an executor with an explicit worker count (minimum 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A single-threaded executor: everything runs inline on the caller.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// This executor, capped to one worker when `work` (in flops or
    /// equivalent fused operations) is below the runtime's parallelism
    /// threshold — see [`Runtime::should_parallelize`]. Scheduling only:
    /// results are identical either way.
    pub fn gated(&self, work: usize) -> Executor {
        if Runtime::should_parallelize(work) {
            *self
        } else {
            Self::serial()
        }
    }

    /// A work-splitting granularity for `items` units of work: small enough
    /// that round-robin distribution balances skewed workloads (such as
    /// triangular kernels), large enough to amortize per-chunk overhead.
    pub fn grain(&self, items: usize) -> usize {
        items.div_ceil(self.threads * 4).max(1)
    }

    /// Applies `f` to every index in `0..n`, returning results in index
    /// order. `f` runs concurrently on up to `threads` workers.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n.max(1));
        if workers <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        // Stride `s` produces items s, s + workers, … in order; the
        // per-stride buffers are interleaved back into index order below.
        let buffers: Vec<Mutex<Vec<T>>> = (0..workers)
            .map(|_| Mutex::new(Vec::with_capacity(n.div_ceil(workers))))
            .collect();
        pool::broadcast(workers, &|stride| {
            let mut buf = lock_slot(&buffers[stride]);
            let mut i = stride;
            while i < n {
                buf.push(f(i));
                i += workers;
            }
        });
        let mut iters: Vec<_> = buffers
            .into_iter()
            .map(|b| into_ok(b).into_iter())
            .collect();
        (0..n)
            .map(|i| {
                iters[i % workers]
                    .next()
                    .expect("executor: missing stride result")
            })
            .collect()
    }

    /// Applies `f` to every index in `0..n` for its side effects, without
    /// collecting results (no `Vec<()>` allocation).
    pub fn for_each<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let workers = self.threads.min(n.max(1));
        if workers <= 1 || n <= 1 {
            (0..n).for_each(f);
            return;
        }
        pool::broadcast(workers, &|stride| {
            let mut i = stride;
            while i < n {
                f(i);
                i += workers;
            }
        });
    }

    /// Consumes `items`, applying `f` to each; item `i` is assigned to
    /// stride `i % threads`, and each stride processes its items in index
    /// order. This is the variable-sized sibling of
    /// [`Executor::par_chunks_mut`]: callers that carve an output into
    /// unequal disjoint pieces (per-row extents from a counting pass, say)
    /// ship each piece as an owned item.
    pub fn for_each_item<W, F>(&self, items: Vec<W>, f: F)
    where
        W: Send,
        F: Fn(W) + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 || n <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let mut assignments: Vec<Vec<W>> = (0..workers)
            .map(|_| Vec::with_capacity(n.div_ceil(workers)))
            .collect();
        for (i, item) in items.into_iter().enumerate() {
            assignments[i % workers].push(item);
        }
        let slots: Vec<Mutex<Vec<W>>> = assignments.into_iter().map(Mutex::new).collect();
        pool::broadcast(workers, &|stride| {
            let own = std::mem::take(&mut *lock_slot(&slots[stride]));
            for item in own {
                f(item);
            }
        });
    }

    /// Applies `f` to every index and reduces the results with `combine`,
    /// starting from `init`.
    ///
    /// Each worker folds its own indices into a private partial result;
    /// the per-worker partials are then tree-combined in worker order, so
    /// the outcome is deterministic for a fixed worker count (and exactly
    /// the sequential fold when `threads == 1`).
    pub fn map_reduce<T, F, R>(&self, n: usize, f: F, init: T, combine: R) -> T
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        let workers = self.threads.min(n.max(1));
        if workers <= 1 || n <= 1 {
            return (0..n).map(f).fold(init, combine);
        }
        let slots: Vec<Mutex<Option<T>>> = (0..workers).map(|_| Mutex::new(None)).collect();
        pool::broadcast(workers, &|stride| {
            let mut acc: Option<T> = None;
            let mut i = stride;
            while i < n {
                let v = f(i);
                acc = Some(match acc {
                    None => v,
                    Some(a) => combine(a, v),
                });
                i += workers;
            }
            *lock_slot(&slots[stride]) = acc;
        });
        let mut partials: Vec<T> = slots.into_iter().filter_map(into_ok).collect();
        // Tree combine: pairwise rounds over the worker partials, in
        // worker order, until one value remains.
        while partials.len() > 1 {
            let mut next = Vec::with_capacity(partials.len().div_ceil(2));
            let mut it = partials.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(combine(a, b)),
                    None => next.push(a),
                }
            }
            partials = next;
        }
        match partials.pop() {
            Some(v) => combine(init, v),
            None => init,
        }
    }

    /// Splits `data` into chunks of at most `chunk_len` elements and
    /// applies `f(chunk_index, chunk)` to each, distributing chunks
    /// round-robin over the workers.
    ///
    /// Chunk `i` covers `data[i * chunk_len .. (i + 1) * chunk_len]`
    /// (shorter for the last chunk), so callers can recover each chunk's
    /// offset from its index. Because the chunks are disjoint `&mut`
    /// slices, this is the safe-Rust backbone of every band-parallel
    /// kernel in the workspace.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be positive");
        let n_chunks = data.len().div_ceil(chunk_len);
        let workers = self.threads.min(n_chunks.max(1));
        if workers <= 1 || n_chunks <= 1 {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            return;
        }
        type Assignment<'a, T> = Vec<(usize, &'a mut [T])>;
        let mut assignments: Vec<Assignment<'_, T>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            assignments[i % workers].push((i, chunk));
        }
        let slots: Vec<Mutex<Assignment<'_, T>>> =
            assignments.into_iter().map(Mutex::new).collect();
        pool::broadcast(workers, &|stride| {
            let mut own = lock_slot(&slots[stride]);
            for (i, chunk) in own.iter_mut() {
                f(*i, chunk);
            }
        });
    }

    /// Runs two closures concurrently (as two strides of one pool job:
    /// the caller starts on the first while an idle worker may take the
    /// second) and returns both results.
    pub fn par_join<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if self.threads <= 1 {
            return (fa(), fb());
        }
        let fa = Mutex::new(Some(fa));
        let fb = Mutex::new(Some(fb));
        let ra: Mutex<Option<A>> = Mutex::new(None);
        let rb: Mutex<Option<B>> = Mutex::new(None);
        pool::broadcast(2, &|stride| {
            if stride == 0 {
                let f = lock_slot(&fa).take().expect("par_join: fa taken twice");
                *lock_slot(&ra) = Some(f());
            } else {
                let f = lock_slot(&fb).take().expect("par_join: fb taken twice");
                *lock_slot(&rb) = Some(f());
            }
        });
        let a = into_ok(ra).expect("par_join: missing first result");
        let b = into_ok(rb).expect("par_join: missing second result");
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let ex = Executor::new(4);
        let out = ex.map(17, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_single_threaded_path() {
        let ex = Executor::new(1);
        assert_eq!(ex.map(3, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(ex.map(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn map_reduce_sums() {
        let ex = Executor::new(3);
        let total = ex.map_reduce(100, |i| i as u64, 0u64, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn map_reduce_serial_is_sequential_fold() {
        // With one thread the reduction is exactly the sequential fold —
        // the compatibility guarantee the kernels' bit-for-bit tests rely
        // on.
        let ex = Executor::serial();
        let concat = ex.map_reduce(
            5,
            |i| i.to_string(),
            String::new(),
            |a, b| format!("{a}{b}"),
        );
        assert_eq!(concat, "01234");
    }

    #[test]
    fn map_reduce_partials_cover_all_items() {
        for threads in 1..6 {
            let ex = Executor::new(threads);
            let total = ex.map_reduce(57, |i| i as u64 + 1, 0, |a, b| a + b);
            assert_eq!(total, (1..=57).sum::<u64>(), "threads = {threads}");
        }
    }

    #[test]
    fn for_each_visits_every_index() {
        let hits = AtomicUsize::new(0);
        Executor::new(4).for_each(33, |i| {
            hits.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), (1..=33).sum::<usize>());
    }

    #[test]
    fn for_each_item_consumes_every_item() {
        let total = AtomicUsize::new(0);
        let items: Vec<usize> = (1..=40).collect();
        Executor::new(4).for_each_item(items, |v| {
            total.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), (1..=40).sum::<usize>());
        // Serial path consumes too.
        let hits = AtomicUsize::new(0);
        Executor::serial().for_each_item(vec![7usize, 8], |v| {
            hits.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn for_each_item_supports_mutable_borrows() {
        // The motivating use: unequal disjoint output pieces shipped as
        // owned items (what the two-pass sparse kernels do).
        let mut data = vec![0usize; 10];
        let (a, rest) = data.split_at_mut(3);
        let (b, c) = rest.split_at_mut(5);
        let items: Vec<(usize, &mut [usize])> = vec![(0, a), (1, b), (2, c)];
        Executor::new(3).for_each_item(items, |(tag, piece)| {
            for v in piece.iter_mut() {
                *v = tag + 1;
            }
        });
        assert_eq!(data, [1, 1, 1, 2, 2, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn par_chunks_mut_covers_disjoint_bands() {
        let mut data = vec![0usize; 103];
        Executor::new(4).par_chunks_mut(&mut data, 10, |ci, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = ci * 10 + off;
            }
        });
        // Every element was written exactly once with its global index.
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn par_chunks_mut_serial_matches() {
        let mut a = vec![1.0f64; 37];
        let mut b = a.clone();
        let f = |ci: usize, chunk: &mut [f64]| {
            for v in chunk.iter_mut() {
                *v += ci as f64;
            }
        };
        Executor::new(1).par_chunks_mut(&mut a, 5, f);
        Executor::new(5).par_chunks_mut(&mut b, 5, f);
        assert_eq!(a, b);
    }

    #[test]
    fn par_join_returns_both() {
        let (a, b) = Executor::new(2).par_join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
        let (a, b) = Executor::serial().par_join(|| 40 + 2, || vec![1, 2]);
        assert_eq!(a, 42);
        assert_eq!(b, vec![1, 2]);
    }

    #[test]
    fn default_has_at_least_one_thread() {
        assert!(Executor::default().threads() >= 1);
    }

    #[test]
    fn grain_is_positive_and_splits_work() {
        let ex = Executor::new(4);
        assert_eq!(ex.grain(0), 1);
        assert!(ex.grain(1000) <= 1000usize.div_ceil(4));
        assert!(Executor::serial().grain(7) >= 1);
    }

    #[test]
    fn gated_caps_small_work_to_serial() {
        let ex = Executor::new(4);
        assert_eq!(ex.gated(0).threads(), 1);
        assert_eq!(ex.gated(usize::MAX).threads(), 4);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        Executor::new(2).map(4, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn map_reduce_worker_panics_propagate() {
        Executor::new(2).map_reduce(
            4,
            |i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            },
            0,
            |a, b| a + b,
        );
    }

    #[test]
    fn parallel_and_serial_agree() {
        let serial = Executor::new(1).map(25, |i| (i * 31) % 7);
        let parallel = Executor::new(8).map(25, |i| (i * 31) % 7);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn oversubscribed_executor_is_deterministic() {
        // Far more strides than any plausible pool: every stride still
        // runs exactly once and results assemble in index order.
        let out = Executor::new(64).map(200, |i| i * 3);
        assert_eq!(out, (0..200).map(|i| i * 3).collect::<Vec<_>>());
    }
}
