//! The process-global [`Runtime`]: one place that decides how many worker
//! threads parallel kernels may use.

use crate::{claim, Executor};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count configured for the process; `0` means "not yet resolved".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// The process-global thread-budget authority.
///
/// `Runtime` owns no threads itself — executors spawn scoped threads on
/// demand — it only answers "how many workers may this call site use right
/// now?", accounting for workers already claimed by enclosing parallel
/// sections (see the crate docs for the composition rule).
#[derive(Debug, Clone, Copy)]
pub struct Runtime;

impl Runtime {
    /// The configured process-wide worker count.
    ///
    /// Resolved once, at first use: `MORPHEUS_NUM_THREADS` if set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`]
    /// (1 if that fails). Later changes to the environment variable have
    /// no effect; use [`Runtime::set_threads`] instead.
    pub fn threads() -> usize {
        match THREADS.load(Ordering::Relaxed) {
            0 => {
                let n = Self::detect();
                // A racing first call detects the same value; last store
                // wins harmlessly.
                THREADS.store(n, Ordering::Relaxed);
                n
            }
            n => n,
        }
    }

    /// Overrides the process-wide worker count (minimum 1). Takes effect
    /// for every subsequent [`Runtime::executor`] call.
    pub fn set_threads(n: usize) {
        THREADS.store(n.max(1), Ordering::Relaxed);
    }

    /// Worker budget available to the *current call site*: the configured
    /// count divided by what enclosing parallel sections have already
    /// claimed, floored at 1.
    pub fn available() -> usize {
        (Self::threads() / claim::current()).max(1)
    }

    /// An executor sized to [`Runtime::available`] — the default executor
    /// every kernel uses when the caller does not pass one explicitly.
    pub fn executor() -> Executor {
        Executor::new(Self::available())
    }

    fn detect() -> usize {
        if let Ok(v) = std::env::var("MORPHEUS_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_positive() {
        assert!(Runtime::threads() >= 1);
    }

    // One test, not several: set_threads mutates the process-global
    // worker count, and concurrent #[test]s doing so would race.
    #[test]
    fn global_thread_count_rules() {
        Runtime::set_threads(0);
        assert!(Runtime::threads() >= 1, "set_threads clamps to >= 1");

        Runtime::set_threads(6);
        assert_eq!(Runtime::threads(), 6);
        let outer = Executor::new(3);
        let inner_sizes = outer.map(3, |_| Runtime::available());
        // 6 configured / 3 claimed = 2 per worker.
        for s in inner_sizes {
            assert!(s <= 2, "inner section saw {s} workers, expected <= 2");
        }
        // Outside any parallel section the full budget is visible again.
        assert_eq!(Runtime::available(), Runtime::threads());
    }
}
