//! The process-global [`Runtime`]: one place that decides how many worker
//! threads parallel kernels may use and when parallelism is worth it.

use crate::{claim, pool, Executor};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count configured for the process; `0` means "not yet resolved".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Work threshold below which kernels stay inline; `0` means "not yet
/// resolved" (user values are clamped to >= 1).
static PAR_THRESHOLD: AtomicUsize = AtomicUsize::new(0);

/// Whether explicit-SIMD kernel paths may run; `0` means "not yet
/// resolved", `1` enabled, `2` disabled.
static SIMD: AtomicUsize = AtomicUsize::new(0);

/// Default work size (in flops / fused operations) below which kernels run
/// inline on the caller. Dispatching onto the resident pool is a queue
/// push plus a condvar wake — the `spawn_overhead` bench group measures
/// ~0.4–1.2 µs per tiny section, vs ~52 µs for the scoped-spawn path the
/// pool replaced — so the crossover sits around the serial time of a few
/// thousand flops (`1 << 14` flops ≈ 3 µs at measured kernel rates). The
/// old executor needed `1 << 18` flops to amortize its spawn tax; the
/// pool moves the threshold down 16x, which is what lets the small
/// per-part products inside factorized rewrite chains parallelize at all.
pub const DEFAULT_PAR_THRESHOLD: usize = 1 << 14;

/// The process-global thread-budget authority.
///
/// `Runtime` owns the resident worker pool (see [`crate::pool`]) and
/// answers "how many workers may this call site use right now?",
/// accounting for workers already claimed by enclosing parallel sections
/// (see the crate docs for the composition rule).
#[derive(Debug, Clone, Copy)]
pub struct Runtime;

impl Runtime {
    /// The configured process-wide worker count.
    ///
    /// Resolved once, at first use: `MORPHEUS_NUM_THREADS` if set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`]
    /// (1 if that fails). Later changes to the environment variable have
    /// no effect; use [`Runtime::set_threads`] instead.
    pub fn threads() -> usize {
        match THREADS.load(Ordering::Relaxed) {
            0 => {
                let n = Self::detect();
                // A racing first call detects the same value; last store
                // wins harmlessly.
                THREADS.store(n, Ordering::Relaxed);
                n
            }
            n => n,
        }
    }

    /// Overrides the process-wide worker count (minimum 1) and rebuilds
    /// the resident pool to match: growth spawns parked workers,
    /// shrinkage retires the excess after they finish the section they
    /// are helping. Takes effect for every subsequent
    /// [`Runtime::executor`] call; sections already in flight complete on
    /// their old budget.
    pub fn set_threads(n: usize) {
        let n = n.max(1);
        THREADS.store(n, Ordering::Relaxed);
        pool::resize(n - 1);
    }

    /// Worker budget available to the *current call site*: the configured
    /// count divided by what enclosing parallel sections have already
    /// claimed, floored at 1.
    pub fn available() -> usize {
        (Self::threads() / claim::current()).max(1)
    }

    /// An executor sized to [`Runtime::available`] — the default executor
    /// every kernel uses when the caller does not pass one explicitly.
    pub fn executor() -> Executor {
        Executor::new(Self::available())
    }

    /// Runs `f` with this thread's pool claim multiplied by `parties`, so
    /// `parties` concurrent subsystem threads (e.g. the scoring service's
    /// resident batch scorers) share the one worker pool instead of each
    /// dispatching as if it owned the whole budget. Inside `f`,
    /// [`Runtime::available`] reports `threads / (claim * parties)`
    /// (floored at 1) and every kernel's default executor sizes itself
    /// accordingly; the previous claim is restored when `f` returns, also
    /// on panic. `parties <= 1` is a plain call.
    pub fn with_pool_share<R>(parties: usize, f: impl FnOnce() -> R) -> R {
        if parties <= 1 {
            return f();
        }
        claim::scoped(claim::current().saturating_mul(parties), f)
    }

    /// Whether a kernel with `work` flops (or equivalent fused operations)
    /// is worth dispatching onto the pool, per the process-wide threshold:
    /// `MORPHEUS_PAR_THRESHOLD` if set to an integer (clamped to >= 1, read
    /// once at first use), else [`DEFAULT_PAR_THRESHOLD`]. Kernels apply
    /// this via [`Executor::gated`]; it affects scheduling only, never
    /// results.
    pub fn should_parallelize(work: usize) -> bool {
        work >= Self::par_threshold()
    }

    /// Overrides the parallelism threshold (minimum 1) for the whole
    /// process; `1` makes every parallel-capable kernel dispatch to the
    /// pool regardless of size (useful in determinism tests and benches).
    pub fn set_par_threshold(work: usize) {
        PAR_THRESHOLD.store(work.max(1), Ordering::Relaxed);
    }

    /// Whether kernels may take their explicit-SIMD (`std::arch`) paths.
    ///
    /// Resolved once, at first use: `false` when the `MORPHEUS_SIMD`
    /// environment variable is set to `off`, `0`, `false`, or `no`
    /// (case-insensitive), `true` otherwise. This is the escape hatch
    /// that keeps the portable scalar kernels reachable on hardware that
    /// *does* support SIMD — for debugging a suspected vector-kernel bug
    /// and for CI coverage of the fallback path. It gates dispatch only;
    /// the fixed-lane reduction kernels compute identical results either
    /// way, and the scalar GEMM microkernel stays within FMA rounding of
    /// the vector one (bit-identical when the CPU has FMA).
    pub fn simd_enabled() -> bool {
        match SIMD.load(Ordering::Relaxed) {
            0 => {
                let on = std::env::var("MORPHEUS_SIMD")
                    .map(|v| {
                        let v = v.trim().to_ascii_lowercase();
                        !matches!(v.as_str(), "off" | "0" | "false" | "no")
                    })
                    .unwrap_or(true);
                SIMD.store(if on { 1 } else { 2 }, Ordering::Relaxed);
                on
            }
            n => n == 1,
        }
    }

    /// Overrides the SIMD gate for the whole process (tests and benches
    /// that compare kernel paths; scheduling/codegen only — the reduction
    /// results are identical either way).
    pub fn set_simd(enabled: bool) {
        SIMD.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
    }

    fn par_threshold() -> usize {
        match PAR_THRESHOLD.load(Ordering::Relaxed) {
            0 => {
                let t = std::env::var("MORPHEUS_PAR_THRESHOLD")
                    .ok()
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .unwrap_or(DEFAULT_PAR_THRESHOLD)
                    .max(1);
                PAR_THRESHOLD.store(t, Ordering::Relaxed);
                t
            }
            t => t,
        }
    }

    fn detect() -> usize {
        if let Ok(v) = std::env::var("MORPHEUS_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_positive() {
        assert!(Runtime::threads() >= 1);
    }

    #[test]
    fn should_parallelize_has_a_positive_threshold() {
        // Whatever the configured threshold, zero work never parallelizes
        // and astronomically large work always does.
        assert!(!Runtime::should_parallelize(0));
        assert!(Runtime::should_parallelize(usize::MAX));
    }

    // One test, not several: set_threads mutates the process-global
    // worker count (and rebuilds the pool), and concurrent #[test]s doing
    // so would race.
    #[test]
    fn global_thread_count_rules() {
        Runtime::set_threads(0);
        assert!(Runtime::threads() >= 1, "set_threads clamps to >= 1");

        Runtime::set_threads(6);
        assert_eq!(Runtime::threads(), 6);
        let outer = Executor::new(3);
        let inner_sizes = outer.map(3, |_| Runtime::available());
        // 6 configured / 3 claimed = 2 per worker.
        for s in inner_sizes {
            assert!(s <= 2, "inner section saw {s} workers, expected <= 2");
        }
        // Outside any parallel section the full budget is visible again.
        assert_eq!(Runtime::available(), Runtime::threads());

        // Shrinking and regrowing the pool leaves dispatch working.
        Runtime::set_threads(1);
        assert_eq!(
            Executor::new(4).map(9, |i| i * 2),
            (0..9).map(|i| i * 2).collect::<Vec<_>>()
        );
        Runtime::set_threads(4);
        assert_eq!(
            Executor::new(4).map(9, |i| i + 1),
            (0..9).map(|i| i + 1).collect::<Vec<_>>()
        );

        // with_pool_share divides the visible budget among parties and
        // restores the claim afterwards, including across a panic.
        Runtime::set_threads(8);
        let seen = Runtime::with_pool_share(4, Runtime::available);
        assert_eq!(seen, 2);
        assert_eq!(Runtime::with_pool_share(1, Runtime::available), 8);
        assert_eq!(
            Runtime::with_pool_share(100, Runtime::available),
            1,
            "oversharing floors at one worker"
        );
        let _ = std::panic::catch_unwind(|| {
            Runtime::with_pool_share(4, || panic!("boom"));
        });
        assert_eq!(Runtime::available(), 8, "claim restored after panic");
    }
}
