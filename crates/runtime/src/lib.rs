//! The shared parallel runtime: a resident worker pool, the [`Executor`]
//! that dispatches onto it, and the process-global [`Runtime`] that sizes
//! both.
//!
//! This crate sits at the very bottom of the workspace DAG so that every
//! compute layer — dense kernels, sparse kernels, the normalized rewrites,
//! and the chunked (ORE-analog) backend — schedules work on the *same*
//! thread budget instead of each layer spawning its own oblivious pool.
//!
//! ## Threading model
//!
//! * The process-wide worker count comes from the `MORPHEUS_NUM_THREADS`
//!   environment variable (read once, at first use), falling back to
//!   [`std::thread::available_parallelism`]. It can be overridden
//!   programmatically with [`Runtime::set_threads`], which also rebuilds
//!   the resident pool.
//! * Worker threads are **long-lived**: they park on a condvar between
//!   parallel sections, and dispatching a section is a queue push plus a
//!   wake — no thread is created on the hot path (the spawn tax of the
//!   old scoped-thread executor). The calling thread always participates
//!   in its own section, so dispatch degrades gracefully when workers are
//!   busy and nested sections can never deadlock (see [`pool`]'s module
//!   docs for the invariants).
//! * Kernels obtain an executor with [`Runtime::executor`]; callers that
//!   want explicit control pass their own [`Executor`] to the `*_with`
//!   kernel variants instead.
//! * Tiny kernels skip the pool entirely: [`Executor::gated`] caps a
//!   section to the caller thread when its work estimate is below the
//!   process-wide threshold (`MORPHEUS_PAR_THRESHOLD`, default
//!   [`runtime::DEFAULT_PAR_THRESHOLD`]) — see
//!   [`Runtime::should_parallelize`].
//! * Parallel sections **compose without oversubscription**: when an outer
//!   level (e.g. the chunk-at-a-time backend) claims `W` workers, code
//!   running inside those workers sees only the remaining budget
//!   (`threads / W`, floored at 1) from [`Runtime::executor`]. The
//!   bookkeeping is a thread-local claim multiplier maintained by the
//!   executor itself, so composition needs no plumbing.
//!
//! ## Determinism
//!
//! All executor primitives are deterministic for a fixed worker count:
//! work is keyed by stride index (round-robin or contiguous bands) — never
//! by which OS thread happens to run it — results are combined in index
//! order, and worker panics propagate. The kernels built on top preserve
//! the *per-output-element accumulation order* of their serial versions,
//! so parallel and single-threaded runs agree bit-for-bit at any worker
//! count, including oversubscribed ones.
//!
//! ## Failure model
//!
//! The runtime is engineered to degrade, never to wedge (see [`faults`]
//! for the deterministic failpoint registry that tests this, and the
//! README's "Failure model" section for the operator view):
//!
//! * A resident worker that dies heals in place; unclaimed strides fall
//!   to the submitter, so no job is ever lost ([`pool`] docs).
//! * A pool that cannot be (re)built degrades every parallel section to
//!   inline serial execution on the caller — bit-identical results, one
//!   warning, and a counter in [`faults::stats`].
//! * Pool and job locks recover from poisoning instead of propagating
//!   it; the state they guard is torn-update-free by construction.
//! * Stride-body panics are caught per stride and re-thrown exactly once
//!   on the submitting thread after the section completes — a panicking
//!   kernel can never strand a worker or a sibling section.

mod executor;
pub mod faults;
mod pool;
mod runtime;
pub mod timing;

pub use executor::Executor;
pub use runtime::{Runtime, DEFAULT_PAR_THRESHOLD};

/// Thread-local bookkeeping of how many workers enclosing parallel
/// sections have claimed, so nested parallelism divides the global budget
/// instead of multiplying it.
pub(crate) mod claim {
    use std::cell::Cell;

    thread_local! {
        static CLAIMED: Cell<usize> = const { Cell::new(1) };
    }

    /// The product of worker counts claimed by enclosing parallel sections
    /// on this thread (1 when not inside any).
    pub(crate) fn current() -> usize {
        CLAIMED.with(|c| c.get())
    }

    /// Sets the claim multiplier for this thread (used on freshly spawned
    /// worker threads, which die when their scope ends).
    pub(crate) fn set(value: usize) {
        CLAIMED.with(|c| c.set(value.max(1)));
    }

    /// Runs `f` with the claim multiplier temporarily set to `value`,
    /// restoring the previous value afterwards (also on panic).
    pub(crate) fn scoped<R>(value: usize, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                set(self.0);
            }
        }
        let guard = Restore(current());
        set(value);
        let out = f();
        drop(guard);
        out
    }
}
