//! Cyclic Jacobi eigendecomposition of symmetric matrices.

use crate::{LinalgError, LinalgResult};
use morpheus_dense::DenseMatrix;

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// An eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Eigenvalues are sorted in descending order, `vectors` holds the matching
/// eigenvectors as columns.
#[derive(Debug, Clone)]
pub struct EigenSym {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, in the order of `values`.
    pub vectors: DenseMatrix,
}

/// Computes the eigendecomposition of a symmetric matrix by the cyclic
/// Jacobi method.
///
/// Only symmetry up to rounding is assumed; the strictly upper part drives
/// the rotations. Returns [`LinalgError::NoConvergence`] if the off-diagonal
/// mass fails to vanish within the sweep budget (practically unreachable for
/// symmetric input).
pub fn eigen_sym(a: &DenseMatrix) -> LinalgResult<EigenSym> {
    if !a.is_square() {
        return Err(LinalgError::BadShape(format!(
            "eigen_sym: matrix is {}x{}, expected square",
            a.rows(),
            a.cols()
        )));
    }
    let n = a.rows();
    if n == 0 {
        return Ok(EigenSym {
            values: Vec::new(),
            vectors: DenseMatrix::zeros(0, 0),
        });
    }
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);
    let frob = m.frobenius_norm().max(f64::MIN_POSITIVE);
    let tol = 1e-14 * frob;

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m.get(p, q).powi(2);
            }
        }
        if off.sqrt() <= tol {
            return Ok(sorted(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Classic Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply rotation to rows/cols p and q of M: M <- Jᵀ M J.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors: V <- V J.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        routine: "eigen_sym",
        sweeps: MAX_SWEEPS,
    })
}

fn sorted(m: DenseMatrix, v: DenseMatrix) -> EigenSym {
    let n = m.rows();
    let mut idx: Vec<usize> = (0..n).collect();
    let diag = m.diag();
    idx.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("NaN eigenvalue"));
    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (new_col, &old_col) in idx.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_col, v.get(r, old_col));
        }
    }
    EigenSym { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = DenseMatrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = eigen_sym(&a).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = eigen_sym(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let b = DenseMatrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, 3.0], &[2.0, 1.0, 1.0]]);
        let a = b.crossprod(); // symmetric PSD
        let e = eigen_sym(&a).unwrap();
        let lam = DenseMatrix::from_diag(&e.values);
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        assert!(rec.approx_eq(&a, 1e-9));
        let vtv = e.vectors.crossprod();
        assert!(vtv.approx_eq(&DenseMatrix::identity(3), 1e-9));
    }

    #[test]
    fn psd_eigenvalues_nonnegative() {
        let b = DenseMatrix::from_fn(5, 3, |i, j| ((i + 1) * (j + 2)) as f64 % 7.0);
        let a = b.crossprod();
        let e = eigen_sym(&a).unwrap();
        for &l in &e.values {
            assert!(l > -1e-9, "PSD matrix produced negative eigenvalue {l}");
        }
    }

    #[test]
    fn empty_and_bad_shape() {
        let e = eigen_sym(&DenseMatrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
        assert!(matches!(
            eigen_sym(&DenseMatrix::zeros(2, 3)),
            Err(LinalgError::BadShape(_))
        ));
    }
}
