//! Error type for the numerical routines.

use std::fmt;

/// Errors surfaced by the factorizations and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix is singular to working precision (pivot below threshold).
    Singular {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// A Cholesky factorization found a non-positive diagonal.
    NotPositiveDefinite {
        /// Index of the failing diagonal entry.
        index: usize,
    },
    /// An iterative routine failed to converge within its sweep budget.
    NoConvergence {
        /// The routine that failed.
        routine: &'static str,
        /// Number of sweeps performed.
        sweeps: usize,
    },
    /// Input did not have the required shape (e.g. non-square for LU).
    BadShape(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular to working precision (pivot {pivot})")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite (diagonal {index})")
            }
            LinalgError::NoConvergence { routine, sweeps } => {
                write!(f, "{routine} did not converge after {sweeps} sweeps")
            }
            LinalgError::BadShape(msg) => write!(f, "bad shape: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for results with [`LinalgError`].
pub type LinalgResult<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(LinalgError::Singular { pivot: 3 }
            .to_string()
            .contains("pivot 3"));
        assert!(LinalgError::NotPositiveDefinite { index: 1 }
            .to_string()
            .contains("positive definite"));
        assert!(LinalgError::NoConvergence {
            routine: "jacobi_svd",
            sweeps: 30
        }
        .to_string()
        .contains("jacobi_svd"));
        assert!(LinalgError::BadShape("2x3".into())
            .to_string()
            .contains("2x3"));
    }
}
