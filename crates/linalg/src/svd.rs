//! One-sided Jacobi singular value decomposition.
//!
//! The one-sided Jacobi method orthogonalizes the columns of `A` by plane
//! rotations; at convergence the column norms are the singular values, the
//! normalized columns form `U`, and the accumulated rotations form `V`. It is
//! simple, numerically robust (high relative accuracy for small singular
//! values), and O(m n²) per sweep — a good fit for the `d ≪ n` matrices this
//! workspace manipulates.

use crate::{LinalgError, LinalgResult};
use morpheus_dense::DenseMatrix;

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 60;

/// A thin singular value decomposition `A = U diag(σ) Vᵀ`.
///
/// For an `m x n` input with `k = min(m, n)`: `u` is `m x k`, `singular`
/// holds the `k` singular values in descending order, and `v` is `n x k`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns), `m x k`.
    pub u: DenseMatrix,
    /// Singular values, descending.
    pub singular: Vec<f64>,
    /// Right singular vectors (columns), `n x k`.
    pub v: DenseMatrix,
}

impl Svd {
    /// Reconstructs `U diag(σ) Vᵀ` (for testing / verification).
    pub fn reconstruct(&self) -> DenseMatrix {
        let us = self.u.scale_cols(&self.singular);
        us.matmul_t(&self.v)
    }

    /// Numerical rank: the number of singular values above
    /// `rtol * max(σ)`.
    pub fn rank(&self, rtol: f64) -> usize {
        let smax = self.singular.first().copied().unwrap_or(0.0);
        self.singular.iter().filter(|&&s| s > rtol * smax).count()
    }
}

/// Computes the thin SVD of a general rectangular matrix by one-sided Jacobi.
pub fn svd(a: &DenseMatrix) -> LinalgResult<Svd> {
    let (m, n) = a.shape();
    if m >= n {
        svd_tall(a)
    } else {
        // SVD of Aᵀ = U' Σ V'ᵀ  ⇒  A = V' Σ U'ᵀ.
        let s = svd_tall(&a.transpose())?;
        Ok(Svd {
            u: s.v,
            singular: s.singular,
            v: s.u,
        })
    }
}

fn svd_tall(a: &DenseMatrix) -> LinalgResult<Svd> {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    if n == 0 {
        return Ok(Svd {
            u: DenseMatrix::zeros(m, 0),
            singular: Vec::new(),
            v: DenseMatrix::zeros(0, 0),
        });
    }
    // Work column-major for cheap column access: store W = A as n columns.
    let mut w: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    let mut v = DenseMatrix::identity(n);
    let eps = f64::EPSILON;

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut max_cos = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (alpha, beta, gamma) = col_moments(&w[p], &w[q]);
                if alpha == 0.0 || beta == 0.0 {
                    continue; // a zero column is orthogonal to everything
                }
                let cosine = gamma.abs() / (alpha * beta).sqrt();
                max_cos = max_cos.max(cosine);
                if cosine <= eps * 16.0 {
                    continue;
                }
                // Rotation that zeroes the (p, q) inner product.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_cols(&mut w, p, q, c, s);
                // Accumulate V.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
        if max_cos <= eps * 16.0 {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NoConvergence {
            routine: "jacobi_svd",
            sweeps: MAX_SWEEPS,
        });
    }

    // Extract singular values and U, then sort descending.
    let mut sigma: Vec<f64> = w
        .iter()
        .map(|col| col.iter().map(|&x| x * x).sum::<f64>().sqrt())
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| sigma[j].partial_cmp(&sigma[i]).expect("NaN singular value"));

    let mut u = DenseMatrix::zeros(m, n);
    let mut v_sorted = DenseMatrix::zeros(n, n);
    let mut sigma_sorted = Vec::with_capacity(n);
    for (new_col, &old_col) in order.iter().enumerate() {
        let s = sigma[old_col];
        sigma_sorted.push(s);
        if s > 0.0 {
            for (i, &wv) in w[old_col].iter().enumerate() {
                u.set(i, new_col, wv / s);
            }
        }
        for i in 0..n {
            v_sorted.set(i, new_col, v.get(i, old_col));
        }
    }
    sigma.clear();
    Ok(Svd {
        u,
        singular: sigma_sorted,
        v: v_sorted,
    })
}

/// Returns `(‖wp‖², ‖wq‖², wpᵀwq)`.
fn col_moments(wp: &[f64], wq: &[f64]) -> (f64, f64, f64) {
    let mut alpha = 0.0;
    let mut beta = 0.0;
    let mut gamma = 0.0;
    for (&x, &y) in wp.iter().zip(wq) {
        alpha += x * x;
        beta += y * y;
        gamma += x * y;
    }
    (alpha, beta, gamma)
}

fn rotate_cols(w: &mut [Vec<f64>], p: usize, q: usize, c: f64, s: f64) {
    debug_assert!(p < q);
    let (left, right) = w.split_at_mut(q);
    let wp = &mut left[p];
    let wq = &mut right[0];
    for (x, y) in wp.iter_mut().zip(wq.iter_mut()) {
        let xp = *x;
        let xq = *y;
        *x = c * xp - s * xq;
        *y = s * xp + c * xq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            &[1.0, 2.0, 0.0],
            &[2.0, 0.0, 2.0],
            &[0.0, 1.0, -1.0],
            &[3.0, 1.0, 4.0],
        ])
    }

    #[test]
    fn reconstruction_tall() {
        let a = tall();
        let s = svd(&a).unwrap();
        assert!(s.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn reconstruction_wide() {
        let a = tall().transpose();
        let s = svd(&a).unwrap();
        assert!(s.reconstruct().approx_eq(&a, 1e-9));
        assert_eq!(s.u.shape(), (3, 3));
        assert_eq!(s.v.shape(), (4, 3));
    }

    #[test]
    fn orthonormal_factors() {
        let s = svd(&tall()).unwrap();
        assert!(s.u.crossprod().approx_eq(&DenseMatrix::identity(3), 1e-9));
        assert!(s.v.crossprod().approx_eq(&DenseMatrix::identity(3), 1e-9));
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let s = svd(&tall()).unwrap();
        for w in s.singular.windows(2) {
            assert!(w[0] >= w[1]);
        }
        for &x in &s.singular {
            assert!(x >= 0.0);
        }
    }

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = DenseMatrix::from_diag(&[3.0, 1.0, 2.0]);
        let s = svd(&a).unwrap();
        assert!((s.singular[0] - 3.0).abs() < 1e-10);
        assert!((s.singular[1] - 2.0).abs() < 1e-10);
        assert!((s.singular[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn rank_deficient_matrix() {
        // Column 2 = column 0 + column 1 → rank 2.
        let a = DenseMatrix::from_rows(&[
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0],
            &[1.0, 1.0, 2.0],
            &[2.0, 1.0, 3.0],
        ]);
        let s = svd(&a).unwrap();
        assert_eq!(s.rank(1e-10), 2);
        assert!(s.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn zero_matrix() {
        let a = DenseMatrix::zeros(3, 2);
        let s = svd(&a).unwrap();
        assert_eq!(s.rank(1e-10), 0);
        assert!(s.reconstruct().approx_eq(&a, 1e-12));
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram() {
        let a = tall();
        let s = svd(&a).unwrap();
        let e = crate::eigen_sym(&a.crossprod()).unwrap();
        for (sv, ev) in s.singular.iter().zip(&e.values) {
            assert!((sv * sv - ev).abs() < 1e-8 * ev.max(1.0));
        }
    }
}
