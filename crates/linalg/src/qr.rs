//! Householder QR decomposition and least-squares solves.
#![allow(clippy::needless_range_loop)] // index loops mirror the textbook algorithm

use crate::{solve_upper_triangular, LinalgError, LinalgResult};
use morpheus_dense::DenseMatrix;

/// A thin (economy) QR decomposition `A = Q R` with `Q` of shape `m x n`
/// (orthonormal columns) and `R` upper triangular `n x n`. Requires `m >= n`.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Orthonormal factor, `m x n`.
    pub q: DenseMatrix,
    /// Upper-triangular factor, `n x n`.
    pub r: DenseMatrix,
}

/// Computes the thin Householder QR decomposition of an `m x n` matrix with
/// `m >= n`.
pub fn householder_qr(a: &DenseMatrix) -> LinalgResult<QrDecomposition> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::BadShape(format!(
            "householder_qr: {m}x{n} has more columns than rows; factor the transpose"
        )));
    }
    // Work on a full copy; accumulate the reflectors' action on I to get Q.
    let mut r = a.clone();
    let mut qt = DenseMatrix::identity(m); // accumulates Hₖ … H₁ (i.e. Qᵀ)
    let mut v = vec![0.0f64; m];
    for k in 0..n {
        // Build the Householder vector for column k below the diagonal.
        let mut norm = 0.0;
        for i in k..m {
            let x = r.get(i, k);
            norm += x * x;
        }
        let norm = norm.sqrt();
        if norm == 0.0 {
            continue; // column already zero below the diagonal
        }
        let akk = r.get(k, k);
        let alpha = if akk >= 0.0 { -norm } else { norm };
        let mut vnorm2 = 0.0;
        for i in k..m {
            let vi = if i == k {
                r.get(i, k) - alpha
            } else {
                r.get(i, k)
            };
            v[i] = vi;
            vnorm2 += vi * vi;
        }
        if vnorm2 == 0.0 {
            continue;
        }
        let beta = 2.0 / vnorm2;
        // R <- H R  (only columns k..n change)
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i] * r.get(i, j);
            }
            let s = beta * dot;
            for i in k..m {
                let val = r.get(i, j) - s * v[i];
                r.set(i, j, val);
            }
        }
        // Qᵀ <- H Qᵀ (all columns change)
        for j in 0..m {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i] * qt.get(i, j);
            }
            let s = beta * dot;
            for i in k..m {
                let val = qt.get(i, j) - s * v[i];
                qt.set(i, j, val);
            }
        }
    }
    // Thin factors.
    let q = qt.transpose().slice_cols(0..n);
    let r_thin = r.slice_rows(0..n);
    // Zero numerical noise below the diagonal of R.
    let mut r_clean = r_thin;
    for i in 0..n {
        for j in 0..i {
            r_clean.set(i, j, 0.0);
        }
    }
    Ok(QrDecomposition { q, r: r_clean })
}

/// Solves the least-squares problem `min ‖A x − b‖₂` for full-column-rank `A`
/// (`m >= n`) via QR: `x = R⁻¹ Qᵀ b`.
pub fn lstsq(a: &DenseMatrix, b: &DenseMatrix) -> LinalgResult<DenseMatrix> {
    if b.rows() != a.rows() {
        return Err(LinalgError::BadShape(format!(
            "lstsq: rhs has {} rows, expected {}",
            b.rows(),
            a.rows()
        )));
    }
    let qr = householder_qr(a)?;
    let qtb = qr.q.t_matmul(b);
    solve_upper_triangular(&qr.r, &qtb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 9.0]])
    }

    #[test]
    fn qr_reconstructs() {
        let a = tall();
        let qr = householder_qr(&a).unwrap();
        assert!(qr.q.matmul(&qr.r).approx_eq(&a, 1e-10));
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let qr = householder_qr(&tall()).unwrap();
        let qtq = qr.q.crossprod();
        assert!(qtq.approx_eq(&DenseMatrix::identity(2), 1e-10));
    }

    #[test]
    fn r_is_upper_triangular() {
        let qr = householder_qr(&tall()).unwrap();
        assert_eq!(qr.r.get(1, 0), 0.0);
    }

    #[test]
    fn lstsq_exact_system() {
        let a = DenseMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0], &[0.0, 0.0]]);
        let b = DenseMatrix::col_vector(&[4.0, 9.0, 0.0]);
        let x = lstsq(&a, &b).unwrap();
        assert!(x.approx_eq(&DenseMatrix::col_vector(&[2.0, 3.0]), 1e-10));
    }

    #[test]
    fn lstsq_overdetermined_matches_normal_equations() {
        let a = tall();
        let b = DenseMatrix::col_vector(&[1.0, 2.0, 3.0, 4.0]);
        let x = lstsq(&a, &b).unwrap();
        // Normal equations: (AᵀA) x = Aᵀ b.
        let lhs = a.crossprod();
        let rhs = a.t_matmul(&b);
        let x_ne = crate::solve(&lhs, &rhs).unwrap();
        assert!(x.approx_eq(&x_ne, 1e-8));
    }

    #[test]
    fn wide_matrix_rejected() {
        assert!(matches!(
            householder_qr(&DenseMatrix::zeros(2, 3)),
            Err(LinalgError::BadShape(_))
        ));
    }
}
