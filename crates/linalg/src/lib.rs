//! Numerical linear algebra for the Morpheus stack.
//!
//! The paper's rewrites for matrix inversion (§3.3.6) assume the host LA
//! system provides `solve` and `ginv` (the Moore–Penrose pseudo-inverse, via
//! an economy SVD in R). This crate supplies those routines from scratch:
//!
//! * LU decomposition with partial pivoting — `solve`, determinant, and the
//!   inverse of well-conditioned square matrices.
//! * Cholesky factorization of symmetric positive-definite matrices — the
//!   fast path for normal-equation solves.
//! * Householder QR — least-squares solves for full-rank systems.
//! * Cyclic Jacobi eigendecomposition of symmetric matrices.
//! * One-sided Jacobi SVD of general rectangular matrices.
//! * The Moore–Penrose pseudo-inverse `ginv`, both the general SVD-backed
//!   form and the symmetric-PSD eigen-backed form used by the factorized
//!   `ginv(crossprod(T))` rewrite.
//!
//! All routines operate on [`morpheus_dense::DenseMatrix`].
//!
//! # Example
//!
//! ```
//! use morpheus_dense::DenseMatrix;
//! use morpheus_linalg::{ginv, solve};
//!
//! let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let b = DenseMatrix::col_vector(&[1.0, 2.0]);
//! let x = solve(&a, &b).unwrap();
//! assert!(a.matmul(&x).approx_eq(&b, 1e-10));
//!
//! // Pseudo-inverse of a rectangular matrix.
//! let t = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
//! let p = ginv(&t);
//! // Moore–Penrose condition: T * T⁺ * T == T.
//! assert!(t.matmul(&p).matmul(&t).approx_eq(&t, 1e-9));
//! ```

mod cholesky;
mod eigen;
mod error;
mod ginv_impl;
mod lu;
mod qr;
mod svd;
mod triangular;

pub use cholesky::{cholesky, solve_spd};
pub use eigen::{eigen_sym, EigenSym};
pub use error::{LinalgError, LinalgResult};
pub use ginv_impl::{ginv, ginv_sym_psd, GINV_RTOL};
pub use lu::{det, inverse, lu_decompose, solve, LuDecomposition};
pub use qr::{householder_qr, lstsq, QrDecomposition};
pub use svd::{svd, Svd};
pub use triangular::{solve_lower_triangular, solve_upper_triangular};
