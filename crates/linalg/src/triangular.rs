//! Forward and backward substitution for triangular systems.

use crate::{LinalgError, LinalgResult};
use morpheus_dense::DenseMatrix;

/// Minimum pivot magnitude before a system is declared singular.
const PIVOT_TOL: f64 = 1e-13;

/// Solves `L X = B` for lower-triangular `L` by forward substitution.
///
/// Only the lower triangle of `l` is read.
pub fn solve_lower_triangular(l: &DenseMatrix, b: &DenseMatrix) -> LinalgResult<DenseMatrix> {
    let n = check_square_system(l, b, "solve_lower_triangular")?;
    let k = b.cols();
    let mut x = b.clone();
    for i in 0..n {
        let piv = l.get(i, i);
        if piv.abs() < PIVOT_TOL {
            return Err(LinalgError::Singular { pivot: i });
        }
        for c in 0..k {
            let mut acc = x.get(i, c);
            for j in 0..i {
                acc -= l.get(i, j) * x.get(j, c);
            }
            x.set(i, c, acc / piv);
        }
    }
    Ok(x)
}

/// Solves `U X = B` for upper-triangular `U` by backward substitution.
///
/// Only the upper triangle of `u` is read.
pub fn solve_upper_triangular(u: &DenseMatrix, b: &DenseMatrix) -> LinalgResult<DenseMatrix> {
    let n = check_square_system(u, b, "solve_upper_triangular")?;
    let k = b.cols();
    let mut x = b.clone();
    for i in (0..n).rev() {
        let piv = u.get(i, i);
        if piv.abs() < PIVOT_TOL {
            return Err(LinalgError::Singular { pivot: i });
        }
        for c in 0..k {
            let mut acc = x.get(i, c);
            for j in (i + 1)..n {
                acc -= u.get(i, j) * x.get(j, c);
            }
            x.set(i, c, acc / piv);
        }
    }
    Ok(x)
}

fn check_square_system(a: &DenseMatrix, b: &DenseMatrix, who: &str) -> LinalgResult<usize> {
    if !a.is_square() {
        return Err(LinalgError::BadShape(format!(
            "{who}: matrix is {}x{}, expected square",
            a.rows(),
            a.cols()
        )));
    }
    if b.rows() != a.rows() {
        return Err(LinalgError::BadShape(format!(
            "{who}: rhs has {} rows, expected {}",
            b.rows(),
            a.rows()
        )));
    }
    Ok(a.rows())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_solve() {
        let l = DenseMatrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let b = DenseMatrix::col_vector(&[4.0, 11.0]);
        let x = solve_lower_triangular(&l, &b).unwrap();
        assert!(l.matmul(&x).approx_eq(&b, 1e-12));
        assert!((x.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((x.get(1, 0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn upper_solve_multi_rhs() {
        let u = DenseMatrix::from_rows(&[&[3.0, 1.0], &[0.0, 2.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 1.0], &[4.0, 2.0]]);
        let x = solve_upper_triangular(&u, &b).unwrap();
        assert!(u.matmul(&x).approx_eq(&b, 1e-12));
    }

    #[test]
    fn singular_triangular_rejected() {
        let l = DenseMatrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let b = DenseMatrix::col_vector(&[1.0, 1.0]);
        assert!(matches!(
            solve_lower_triangular(&l, &b),
            Err(LinalgError::Singular { pivot: 0 })
        ));
    }

    #[test]
    fn shape_errors() {
        let l = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 1);
        assert!(matches!(
            solve_lower_triangular(&l, &b),
            Err(LinalgError::BadShape(_))
        ));
        let sq = DenseMatrix::identity(2);
        let bad_b = DenseMatrix::zeros(3, 1);
        assert!(matches!(
            solve_upper_triangular(&sq, &bad_b),
            Err(LinalgError::BadShape(_))
        ));
    }
}
