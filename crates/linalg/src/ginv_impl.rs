//! The Moore–Penrose pseudo-inverse (`ginv` in R / MASS).
//!
//! Two entry points, matching how the paper's rewrites consume them:
//!
//! * [`ginv`] — general rectangular input via the one-sided Jacobi SVD.
//! * [`ginv_sym_psd`] — symmetric positive-semidefinite input (the Gram
//!   matrix `crossprod(T)`) via the Jacobi eigendecomposition; this is the
//!   inner routine of the factorized rewrite
//!   `ginv(T) → ginv(crossprod(T)) Tᵀ` (§3.3.6).

use crate::{eigen_sym, svd};
use morpheus_dense::DenseMatrix;

/// Relative tolerance for treating a singular value as zero, mirroring
/// MASS::ginv's default (`sqrt(eps)`-flavored thresholds are too loose for
/// f64; we use the NumPy/LAPACK convention `max(m, n) * eps`).
pub const GINV_RTOL: f64 = f64::EPSILON;

fn cutoff(dim_max: usize, largest: f64) -> f64 {
    dim_max as f64 * GINV_RTOL * largest
}

/// Computes the Moore–Penrose pseudo-inverse `A⁺` of a general matrix.
///
/// `A⁺ = V diag(σᵢ > τ ? 1/σᵢ : 0) Uᵀ` with `τ = max(m,n)·eps·σ_max`.
///
/// # Panics
/// Panics only if the internal Jacobi SVD fails to converge, which does not
/// occur for finite input.
pub fn ginv(a: &DenseMatrix) -> DenseMatrix {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return DenseMatrix::zeros(n, m);
    }
    let s = svd(a).expect("ginv: Jacobi SVD failed to converge");
    let tau = cutoff(m.max(n), s.singular.first().copied().unwrap_or(0.0));
    let inv_sigma: Vec<f64> = s
        .singular
        .iter()
        .map(|&x| if x > tau { 1.0 / x } else { 0.0 })
        .collect();
    // A⁺ = V Σ⁺ Uᵀ.
    s.v.scale_cols(&inv_sigma).matmul_t(&s.u)
}

/// Computes the pseudo-inverse of a **symmetric positive-semidefinite**
/// matrix (e.g. a Gram matrix) via its eigendecomposition:
/// `A⁺ = V diag(λᵢ > τ ? 1/λᵢ : 0) Vᵀ`.
///
/// This is cheaper than the general SVD route and is what the factorized
/// `ginv` rewrite calls on `crossprod(T)`.
///
/// # Panics
/// Panics if `a` is not square or the Jacobi iteration fails to converge.
pub fn ginv_sym_psd(a: &DenseMatrix) -> DenseMatrix {
    assert!(a.is_square(), "ginv_sym_psd: matrix must be square");
    if a.rows() == 0 {
        return DenseMatrix::zeros(0, 0);
    }
    let e = eigen_sym(a).expect("ginv_sym_psd: Jacobi eigendecomposition failed to converge");
    let lmax = e.values.first().copied().unwrap_or(0.0).max(0.0);
    let tau = cutoff(a.rows(), lmax);
    let inv_lambda: Vec<f64> = e
        .values
        .iter()
        .map(|&l| if l > tau { 1.0 / l } else { 0.0 })
        .collect();
    let vs = e.vectors.scale_cols(&inv_lambda);
    vs.matmul_t(&e.vectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_moore_penrose(a: &DenseMatrix, p: &DenseMatrix, tol: f64) {
        // 1. A P A = A
        assert!(a.matmul(p).matmul(a).approx_eq(a, tol), "APA != A");
        // 2. P A P = P
        assert!(p.matmul(a).matmul(p).approx_eq(p, tol), "PAP != P");
        // 3. (A P)ᵀ = A P
        let ap = a.matmul(p);
        assert!(ap.transpose().approx_eq(&ap, tol), "AP not symmetric");
        // 4. (P A)ᵀ = P A
        let pa = p.matmul(a);
        assert!(pa.transpose().approx_eq(&pa, tol), "PA not symmetric");
    }

    #[test]
    fn identity_pseudo_inverse() {
        let i = DenseMatrix::identity(3);
        assert!(ginv(&i).approx_eq(&i, 1e-12));
    }

    #[test]
    fn invertible_square_matches_inverse() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]);
        let p = ginv(&a);
        let inv = crate::inverse(&a).unwrap();
        assert!(p.approx_eq(&inv, 1e-9));
    }

    #[test]
    fn tall_matrix_moore_penrose() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let p = ginv(&a);
        assert_eq!(p.shape(), (2, 3));
        check_moore_penrose(&a, &p, 1e-8);
        // Full column rank ⇒ P = (AᵀA)⁻¹Aᵀ, so PA = I.
        assert!(p.matmul(&a).approx_eq(&DenseMatrix::identity(2), 1e-8));
    }

    #[test]
    fn wide_matrix_moore_penrose() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 1.0]]);
        let p = ginv(&a);
        assert_eq!(p.shape(), (3, 2));
        check_moore_penrose(&a, &p, 1e-8);
        assert!(a.matmul(&p).approx_eq(&DenseMatrix::identity(2), 1e-8));
    }

    #[test]
    fn rank_deficient_moore_penrose() {
        // rank 1
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let p = ginv(&a);
        check_moore_penrose(&a, &p, 1e-8);
    }

    #[test]
    fn zero_matrix_pseudo_inverse_is_zero_transposed() {
        let a = DenseMatrix::zeros(2, 3);
        let p = ginv(&a);
        assert_eq!(p.shape(), (3, 2));
        assert_eq!(p.nnz(), 0);
    }

    #[test]
    fn sym_psd_route_matches_general_route() {
        let b = DenseMatrix::from_rows(&[
            &[1.0, 2.0, 1.0],
            &[0.0, 1.0, 3.0],
            &[2.0, 0.0, 1.0],
            &[1.0, 1.0, 1.0],
        ]);
        let g = b.crossprod();
        let p1 = ginv_sym_psd(&g);
        let p2 = ginv(&g);
        assert!(p1.approx_eq(&p2, 1e-7));
        check_moore_penrose(&g, &p1, 1e-7);
    }

    #[test]
    fn sym_psd_singular_gram() {
        // Gram matrix of a rank-deficient matrix.
        let b = DenseMatrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let g = b.crossprod();
        let p = ginv_sym_psd(&g);
        check_moore_penrose(&g, &p, 1e-8);
    }

    #[test]
    fn paper_identity_ginv_via_crossprod() {
        // The §3.3.6 rewrite identity: ginv(T) = ginv(crossprod(T)) Tᵀ for any T.
        let t = DenseMatrix::from_rows(&[
            &[1.0, 2.0, 0.5],
            &[3.0, 4.0, 1.0],
            &[5.0, 6.0, -1.0],
            &[0.0, 1.0, 2.0],
            &[2.0, 2.0, 2.0],
        ]);
        let direct = ginv(&t);
        let via_crossprod = ginv_sym_psd(&t.crossprod()).matmul(&t.transpose());
        assert!(direct.approx_eq(&via_crossprod, 1e-7));
    }
}
