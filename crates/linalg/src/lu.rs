//! LU decomposition with partial pivoting, `solve`, determinant, inverse.

use crate::{LinalgError, LinalgResult};
use morpheus_dense::DenseMatrix;

/// Pivot threshold below which the matrix is declared singular.
const PIVOT_TOL: f64 = 1e-13;

/// A packed LU decomposition `P A = L U` with partial pivoting.
///
/// `lu` stores `L` (unit diagonal, below) and `U` (on and above the
/// diagonal); `perm[i]` is the source row of permuted row `i`; `sign` is the
/// permutation's signature (for determinants).
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: DenseMatrix,
    perm: Vec<usize>,
    sign: f64,
}

impl LuDecomposition {
    /// The permutation vector (row `i` of `PA` is row `perm[i]` of `A`).
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `A X = B` using the precomputed factorization.
    ///
    /// # Panics
    /// Panics if `b.rows()` differs from the factored dimension.
    pub fn solve(&self, b: &DenseMatrix) -> DenseMatrix {
        let n = self.lu.rows();
        assert_eq!(b.rows(), n, "LuDecomposition::solve: rhs has wrong height");
        let k = b.cols();
        // Apply permutation.
        let mut x = DenseMatrix::zeros(n, k);
        for i in 0..n {
            x.row_mut(i).copy_from_slice(b.row(self.perm[i]));
        }
        // Forward substitution with implicit unit diagonal L.
        for i in 0..n {
            for j in 0..i {
                let lij = self.lu.get(i, j);
                if lij != 0.0 {
                    for c in 0..k {
                        let v = x.get(i, c) - lij * x.get(j, c);
                        x.set(i, c, v);
                    }
                }
            }
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let piv = self.lu.get(i, i);
            for j in (i + 1)..n {
                let uij = self.lu.get(i, j);
                if uij != 0.0 {
                    for c in 0..k {
                        let v = x.get(i, c) - uij * x.get(j, c);
                        x.set(i, c, v);
                    }
                }
            }
            for c in 0..k {
                x.set(i, c, x.get(i, c) / piv);
            }
        }
        x
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        self.sign * self.lu.diag().iter().product::<f64>()
    }
}

/// Computes the LU decomposition of a square matrix with partial pivoting.
///
/// Returns [`LinalgError::Singular`] when a pivot falls below threshold and
/// [`LinalgError::BadShape`] for non-square input.
pub fn lu_decompose(a: &DenseMatrix) -> LinalgResult<LuDecomposition> {
    if !a.is_square() {
        return Err(LinalgError::BadShape(format!(
            "lu_decompose: matrix is {}x{}, expected square",
            a.rows(),
            a.cols()
        )));
    }
    let n = a.rows();
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;
    for col in 0..n {
        // Find pivot.
        let mut piv_row = col;
        let mut piv_val = lu.get(col, col).abs();
        for r in (col + 1)..n {
            let v = lu.get(r, col).abs();
            if v > piv_val {
                piv_val = v;
                piv_row = r;
            }
        }
        if piv_val < PIVOT_TOL {
            return Err(LinalgError::Singular { pivot: col });
        }
        if piv_row != col {
            perm.swap(col, piv_row);
            sign = -sign;
            for j in 0..n {
                let tmp = lu.get(col, j);
                lu.set(col, j, lu.get(piv_row, j));
                lu.set(piv_row, j, tmp);
            }
        }
        let piv = lu.get(col, col);
        for r in (col + 1)..n {
            let factor = lu.get(r, col) / piv;
            lu.set(r, col, factor);
            if factor != 0.0 {
                for j in (col + 1)..n {
                    let v = lu.get(r, j) - factor * lu.get(col, j);
                    lu.set(r, j, v);
                }
            }
        }
    }
    Ok(LuDecomposition { lu, perm, sign })
}

/// Solves the square linear system `A X = B`.
pub fn solve(a: &DenseMatrix, b: &DenseMatrix) -> LinalgResult<DenseMatrix> {
    if b.rows() != a.rows() {
        return Err(LinalgError::BadShape(format!(
            "solve: rhs has {} rows, expected {}",
            b.rows(),
            a.rows()
        )));
    }
    Ok(lu_decompose(a)?.solve(b))
}

/// Determinant of a square matrix (0 for singular input).
pub fn det(a: &DenseMatrix) -> LinalgResult<f64> {
    match lu_decompose(a) {
        Ok(lu) => Ok(lu.det()),
        Err(LinalgError::Singular { .. }) => Ok(0.0),
        Err(e) => Err(e),
    }
}

/// Inverse of a non-singular square matrix.
pub fn inverse(a: &DenseMatrix) -> LinalgResult<DenseMatrix> {
    Ok(lu_decompose(a)?.solve(&DenseMatrix::identity(a.rows())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_conditioned() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[4.0, 1.0, 2.0], &[1.0, 5.0, 1.0], &[2.0, 1.0, 6.0]])
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = well_conditioned();
        let x_true = DenseMatrix::col_vector(&[1.0, -2.0, 3.0]);
        let b = a.matmul(&x_true);
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn solve_multi_rhs() {
        let a = well_conditioned();
        let b = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let x = solve(&a, &b).unwrap();
        assert!(a.matmul(&x).approx_eq(&b, 1e-10));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = DenseMatrix::col_vector(&[2.0, 3.0]);
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&DenseMatrix::col_vector(&[3.0, 2.0]), 1e-12));
    }

    #[test]
    fn determinant_values() {
        assert!((det(&DenseMatrix::identity(3)).unwrap() - 1.0).abs() < 1e-12);
        let a = DenseMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        assert!((det(&a).unwrap() - 6.0).abs() < 1e-12);
        // Swapped rows flip the sign.
        let swapped = DenseMatrix::from_rows(&[&[0.0, 3.0], &[2.0, 0.0]]);
        assert!((det(&swapped).unwrap() + 6.0).abs() < 1e-12);
        // Singular matrix has determinant 0.
        let sing = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(det(&sing).unwrap(), 0.0);
    }

    #[test]
    fn inverse_round_trip() {
        let a = well_conditioned();
        let ainv = inverse(&a).unwrap();
        assert!(a.matmul(&ainv).approx_eq(&DenseMatrix::identity(3), 1e-10));
        assert!(ainv.matmul(&a).approx_eq(&DenseMatrix::identity(3), 1e-10));
    }

    #[test]
    fn singular_matrix_rejected() {
        let sing = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            lu_decompose(&sing),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            lu_decompose(&DenseMatrix::zeros(2, 3)),
            Err(LinalgError::BadShape(_))
        ));
        let a = DenseMatrix::identity(2);
        assert!(matches!(
            solve(&a, &DenseMatrix::zeros(3, 1)),
            Err(LinalgError::BadShape(_))
        ));
    }
}
