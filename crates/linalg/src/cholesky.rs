//! Cholesky factorization of symmetric positive-definite matrices.

use crate::{solve_lower_triangular, solve_upper_triangular, LinalgError, LinalgResult};
use morpheus_dense::DenseMatrix;

/// Computes the lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// Only the lower triangle of `a` is read (the matrix is assumed symmetric).
/// Returns [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is not
/// positive *relative to the matrix scale* (`n · eps · max_diag`): a pivot
/// at rounding level means the matrix is numerically semidefinite, and
/// whether the computed value lands above or below exact zero is decided
/// by kernel rounding — accepting it would make the success of the
/// factorization (and the normal-equation solver's route choice downstream)
/// flip on bit-level input perturbations instead of failing deterministically.
pub fn cholesky(a: &DenseMatrix) -> LinalgResult<DenseMatrix> {
    if !a.is_square() {
        return Err(LinalgError::BadShape(format!(
            "cholesky: matrix is {}x{}, expected square",
            a.rows(),
            a.cols()
        )));
    }
    let n = a.rows();
    let mut max_diag = 0.0f64;
    for i in 0..n {
        max_diag = max_diag.max(a.get(i, i).abs());
    }
    let pivot_floor = n as f64 * f64::EPSILON * max_diag;
    let mut l = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut acc = a.get(i, j);
            for k in 0..j {
                acc -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if acc <= pivot_floor {
                    return Err(LinalgError::NotPositiveDefinite { index: i });
                }
                l.set(i, j, acc.sqrt());
            } else {
                l.set(i, j, acc / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `A X = B` for symmetric positive-definite `A` via Cholesky.
///
/// This is the fast path for normal-equation solves
/// (`crossprod(T) w = Tᵀ y`) when the Gram matrix is non-singular.
pub fn solve_spd(a: &DenseMatrix, b: &DenseMatrix) -> LinalgResult<DenseMatrix> {
    if b.rows() != a.rows() {
        return Err(LinalgError::BadShape(format!(
            "solve_spd: rhs has {} rows, expected {}",
            b.rows(),
            a.rows()
        )));
    }
    let l = cholesky(a)?;
    let y = solve_lower_triangular(&l, b)?;
    solve_upper_triangular(&l.transpose(), &y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> DenseMatrix {
        // A = Mᵀ M + I is SPD for any M.
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut a = m.crossprod();
        a.add_assign(&DenseMatrix::identity(2));
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd();
        let l = cholesky(&a).unwrap();
        assert!(l.matmul(&l.transpose()).approx_eq(&a, 1e-10));
        // L is lower triangular.
        assert_eq!(l.get(0, 1), 0.0);
    }

    #[test]
    fn solve_spd_matches_lu() {
        let a = spd();
        let b = DenseMatrix::col_vector(&[1.0, 2.0]);
        let x = solve_spd(&a, &b).unwrap();
        let x_lu = crate::solve(&a, &b).unwrap();
        assert!(x.approx_eq(&x_lu, 1e-9));
    }

    #[test]
    fn indefinite_rejected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { index: 1 })
        ));
    }

    #[test]
    fn semidefinite_rejected() {
        // Rank-1 PSD matrix: xxᵀ with x = (1, 1).
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            cholesky(&DenseMatrix::zeros(2, 3)),
            Err(LinalgError::BadShape(_))
        ));
    }
}
