//! Tokenizer for the R-like LA subset, plus the crate error type.

use std::fmt;

/// Errors from parsing or evaluating a script.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// Lexical error: unexpected character.
    Lex {
        /// 1-based line.
        line: usize,
        /// Offending character.
        ch: char,
    },
    /// Syntax error with a human-readable description.
    Parse {
        /// 1-based line.
        line: usize,
        /// Description of what went wrong.
        msg: String,
    },
    /// A name was referenced before being bound.
    Undefined(String),
    /// An operator was applied to incompatible value kinds.
    Type(String),
    /// Matrix shapes were incompatible.
    Shape(String),
    /// A function received the wrong number of arguments.
    Arity {
        /// Function name.
        func: String,
        /// Arguments expected.
        expected: usize,
        /// Arguments received.
        found: usize,
    },
    /// A runtime error annotated with the source line of the statement
    /// that raised it (the parser's spans, preserved by the optimizer and
    /// the script planner).
    At {
        /// 1-based line of the failing statement.
        line: usize,
        /// The underlying error.
        inner: Box<LangError>,
    },
}

impl LangError {
    /// Annotates a runtime error with its statement's source line. Errors
    /// that already carry a line (lex, parse, or an earlier annotation)
    /// are returned unchanged, so nested statements keep the innermost —
    /// most precise — span.
    pub fn at(self, line: usize) -> LangError {
        match self {
            e @ (LangError::Lex { .. } | LangError::Parse { .. } | LangError::At { .. }) => e,
            e => LangError::At {
                line,
                inner: Box::new(e),
            },
        }
    }

    /// The underlying error, with any line annotation stripped.
    pub fn root(&self) -> &LangError {
        match self {
            LangError::At { inner, .. } => inner.root(),
            e => e,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, ch } => write!(f, "line {line}: unexpected character '{ch}'"),
            LangError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            LangError::Undefined(name) => write!(f, "undefined variable '{name}'"),
            LangError::Type(msg) => write!(f, "type error: {msg}"),
            LangError::Shape(msg) => write!(f, "shape error: {msg}"),
            LangError::Arity {
                func,
                expected,
                found,
            } => write!(f, "{func}() takes {expected} argument(s), got {found}"),
            LangError::At { line, inner } => write!(f, "line {line}: {inner}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<LangError> for morpheus_core::MorpheusError {
    /// Carries the rendered message: `morpheus-lang` sits above
    /// `morpheus-core` in the crate DAG, so the unified error cannot hold
    /// `LangError` structurally without a dependency cycle.
    fn from(e: LangError) -> Self {
        morpheus_core::MorpheusError::Lang(e.to_string())
    }
}

/// A token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    Number(f64),
    Ident(String),
    /// `%*%`
    MatMul,
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    /// `=` or `<-`
    Assign,
    /// `==`
    EqEq,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Colon,
    /// Statement separator: newline or `;`
    Newline,
    /// `for`
    For,
    /// `in`
    In,
}

/// Tokenizes a script. Comments run from `#` to end of line.
pub(crate) fn tokenize(src: &str) -> Result<Vec<Token>, LangError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Newline,
                    line,
                });
                line += 1;
            }
            ';' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Newline,
                    line,
                });
            }
            ' ' | '\t' | '\r' => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for cc in chars.by_ref() {
                    if cc == '\n' {
                        tokens.push(Token {
                            kind: TokenKind::Newline,
                            line,
                        });
                        line += 1;
                        break;
                    }
                }
            }
            '0'..='9' | '.' => {
                let mut text = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' || d == 'e' || d == 'E' {
                        text.push(d);
                        chars.next();
                        // Allow exponent signs: 1e-3.
                        if (d == 'e' || d == 'E') && matches!(chars.peek(), Some('+') | Some('-')) {
                            text.push(chars.next().expect("peeked"));
                        }
                    } else {
                        break;
                    }
                }
                let value: f64 = text.parse().map_err(|_| LangError::Parse {
                    line,
                    msg: format!("malformed number '{text}'"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    line,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut name = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' || d == '.' {
                        name.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let kind = match name.as_str() {
                    "for" => TokenKind::For,
                    "in" => TokenKind::In,
                    _ => TokenKind::Ident(name),
                };
                tokens.push(Token { kind, line });
            }
            '%' => {
                chars.next();
                if chars.next() == Some('*') && chars.next() == Some('%') {
                    tokens.push(Token {
                        kind: TokenKind::MatMul,
                        line,
                    });
                } else {
                    return Err(LangError::Lex { line, ch: '%' });
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'-') {
                    chars.next();
                    tokens.push(Token {
                        kind: TokenKind::Assign,
                        line,
                    });
                } else {
                    return Err(LangError::Lex { line, ch: '<' });
                }
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token {
                        kind: TokenKind::EqEq,
                        line,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Assign,
                        line,
                    });
                }
            }
            '+' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    line,
                });
            }
            '-' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    line,
                });
            }
            '*' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Star,
                    line,
                });
            }
            '/' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    line,
                });
            }
            '^' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Caret,
                    line,
                });
            }
            '(' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
            }
            ')' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
            }
            '{' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    line,
                });
            }
            '}' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    line,
                });
            }
            ',' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
            }
            ':' => {
                chars.next();
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    line,
                });
            }
            other => return Err(LangError::Lex { line, ch: other }),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("w = t(T) %*% p"),
            vec![
                TokenKind::Ident("w".into()),
                TokenKind::Assign,
                TokenKind::Ident("t".into()),
                TokenKind::LParen,
                TokenKind::Ident("T".into()),
                TokenKind::RParen,
                TokenKind::MatMul,
                TokenKind::Ident("p".into()),
            ]
        );
    }

    #[test]
    fn numbers_including_exponents() {
        assert_eq!(
            kinds("1 2.5 1e-3 3E2"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(2.5),
                TokenKind::Number(1e-3),
                TokenKind::Number(3e2),
            ]
        );
    }

    #[test]
    fn r_style_assignment_and_keywords() {
        assert_eq!(
            kinds("for (i in 1:3) { x <- 2 }"),
            vec![
                TokenKind::For,
                TokenKind::LParen,
                TokenKind::Ident("i".into()),
                TokenKind::In,
                TokenKind::Number(1.0),
                TokenKind::Colon,
                TokenKind::Number(3.0),
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Number(2.0),
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = tokenize("a = 1 # set a\nb = 2").unwrap();
        assert!(toks.iter().any(|t| t.kind == TokenKind::Newline));
        let last = toks.last().unwrap();
        assert_eq!(last.line, 2);
    }

    #[test]
    fn bad_characters_are_reported() {
        assert!(matches!(
            tokenize("a $ b"),
            Err(LangError::Lex { ch: '$', .. })
        ));
        assert!(matches!(tokenize("a %+% b"), Err(LangError::Lex { .. })));
        assert!(matches!(tokenize("a < b"), Err(LangError::Lex { .. })));
    }
}
