//! An R-like linear-algebra scripting layer over Morpheus operands.
//!
//! The paper's Figure 1(c) shows Morpheus taking a *standard LA script*
//! (logistic regression in R) and executing it factorized, because the LA
//! operators are overloaded on the normalized-matrix class. This crate
//! reproduces that workflow end to end in Rust:
//!
//! 1. [`parse`] turns an R-flavored script (`%*%`, `t()`, `crossprod()`,
//!    `rowSums()`, `for` loops, `<-` assignment) into an AST;
//! 2. [`optimize`] applies algebraic cleanups (double-transpose
//!    elimination, scalar constant folding);
//! 3. [`eval_program`] runs the AST against an [`Env`] binding names to
//!    [`Value`]s — scalars, regular matrices, **or normalized matrices**.
//!
//! Because evaluation dispatches every operator through the same rewrite
//! rules as the typed API, *the identical script* runs materialized when
//! `T` is bound to a regular matrix and through the per-operator planner
//! (`morpheus_core::PlannedMatrix`, strategy from `MORPHEUS_STRATEGY`)
//! when `T` is bound to a normalized matrix — no changes to the script,
//! the paper's automation claim.
//!
//! # Example: the paper's logistic-regression script
//!
//! ```
//! use morpheus_core::{Matrix, NormalizedMatrix};
//! use morpheus_dense::DenseMatrix;
//! use morpheus_lang::{parse, eval_program, Env, Value};
//!
//! let script = r#"
//!     w = zeros(4, 1)
//!     for (i in 1:3) {
//!         p = Y / (1 + exp(Y * (T %*% w)))
//!         w = w + alpha * (t(T) %*% p)
//!     }
//!     w
//! "#;
//! let program = parse(script).unwrap();
//!
//! let s = DenseMatrix::from_rows(&[&[1., 2.], &[3., 4.], &[5., 6.], &[0., 1.]]);
//! let r = DenseMatrix::from_rows(&[&[0.5, 1.0], &[1.5, 2.0]]);
//! let tn = NormalizedMatrix::pk_fk(s.into(), &[0, 1, 1, 0], r.into());
//! let y = DenseMatrix::col_vector(&[1.0, -1.0, 1.0, -1.0]);
//!
//! // Factorized: T bound to the normalized matrix (behind the planner).
//! let mut env = Env::new();
//! env.bind("T", Value::normalized(tn.clone()));
//! env.bind("Y", Value::Dense(y.clone()));
//! env.bind("alpha", Value::Scalar(0.01));
//! let w_factorized = eval_program(&program, &mut env).unwrap();
//!
//! // Materialized: the same script, T bound to the join output.
//! let mut env_m = Env::new();
//! env_m.bind("T", Value::Dense(tn.materialize().to_dense()));
//! env_m.bind("Y", Value::Dense(y));
//! env_m.bind("alpha", Value::Scalar(0.01));
//! let w_materialized = eval_program(&program, &mut env_m).unwrap();
//!
//! assert!(w_factorized.as_dense().unwrap()
//!     .approx_eq(w_materialized.as_dense().unwrap(), 1e-10));
//! ```

mod ast;
mod eval;
mod optimize;
mod parser;
mod plan;
mod token;

pub use ast::{BinOp, Expr, Program, Stmt, UnaryFn};
pub use eval::{eval_expr, eval_program, Env, Value};
pub use optimize::optimize;
pub use parser::{parse, parse_expr};
pub use plan::{
    eval_plan, plan_cache_reset, plan_cache_stats, plan_program, run_program, PlanCacheStats,
    ScriptPlan, PLAN_CACHE_ENV,
};
pub use token::LangError;
