//! The abstract syntax tree for the R-like LA subset.

/// Element-wise / matrix binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (element-wise).
    Add,
    /// `-` (element-wise).
    Sub,
    /// `*` (element-wise / scalar).
    Mul,
    /// `/` (element-wise / scalar).
    Div,
    /// `^` (element-wise power).
    Pow,
    /// `%*%` (matrix multiplication).
    MatMul,
    /// `==` (element-wise equality indicator, like R).
    Eq,
}

/// Built-in unary LA functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryFn {
    /// `t(x)` — transpose.
    Transpose,
    /// `exp(x)`.
    Exp,
    /// `log(x)`.
    Log,
    /// `sigmoid(x)` — logistic link.
    Sigmoid,
    /// `rowSums(x)`.
    RowSums,
    /// `rowMin(x)` — per-row minimum (the K-Means assignment primitive).
    RowMin,
    /// `colSums(x)`.
    ColSums,
    /// `sum(x)`.
    Sum,
    /// `crossprod(x)` — `xᵀ x`.
    Crossprod,
    /// `tcrossprod(x)` — `x xᵀ`.
    TCrossprod,
    /// `ginv(x)` — Moore–Penrose pseudo-inverse.
    Ginv,
    /// `materialize(x)` — force a normalized matrix to a regular one.
    Materialize,
}

impl UnaryFn {
    /// Resolves a function name, if it is a known unary builtin.
    pub fn from_name(name: &str) -> Option<UnaryFn> {
        Some(match name {
            "t" => UnaryFn::Transpose,
            "exp" => UnaryFn::Exp,
            "log" => UnaryFn::Log,
            "sigmoid" => UnaryFn::Sigmoid,
            "rowSums" => UnaryFn::RowSums,
            "rowMin" => UnaryFn::RowMin,
            "colSums" => UnaryFn::ColSums,
            "sum" => UnaryFn::Sum,
            "crossprod" => UnaryFn::Crossprod,
            "tcrossprod" => UnaryFn::TCrossprod,
            "ginv" => UnaryFn::Ginv,
            "materialize" => UnaryFn::Materialize,
            _ => return None,
        })
    }

    /// The surface name.
    pub fn name(&self) -> &'static str {
        match self {
            UnaryFn::Transpose => "t",
            UnaryFn::Exp => "exp",
            UnaryFn::Log => "log",
            UnaryFn::Sigmoid => "sigmoid",
            UnaryFn::RowSums => "rowSums",
            UnaryFn::RowMin => "rowMin",
            UnaryFn::ColSums => "colSums",
            UnaryFn::Sum => "sum",
            UnaryFn::Crossprod => "crossprod",
            UnaryFn::TCrossprod => "tcrossprod",
            UnaryFn::Ginv => "ginv",
            UnaryFn::Materialize => "materialize",
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary arithmetic negation.
    Neg(Box<Expr>),
    /// Unary builtin call.
    Call(UnaryFn, Box<Expr>),
    /// `zeros(r, c)` — all-zero matrix constructor.
    Zeros(Box<Expr>, Box<Expr>),
    /// `ones(r, c)` — all-one matrix constructor.
    Ones(Box<Expr>, Box<Expr>),
}

/// Statements. Every variant carries the 1-based source line it starts
/// on, so runtime errors can point back at the script — and the optimizer
/// and script planner preserve the span through their rewrites.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = expr` / `name <- expr`.
    Assign {
        /// Bound name.
        name: String,
        /// Right-hand side.
        expr: Expr,
        /// 1-based source line.
        line: usize,
    },
    /// Bare expression; its value becomes the program result if last.
    Expr {
        /// The expression.
        expr: Expr,
        /// 1-based source line.
        line: usize,
    },
    /// `for (v in a:b) { body }` — inclusive integer range, like R.
    For {
        /// Loop variable (bound to the integer as a scalar).
        var: String,
        /// Range start expression (evaluated once).
        from: Expr,
        /// Range end expression (evaluated once).
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// 1-based source line of the `for` keyword.
        line: usize,
    },
}

impl Stmt {
    /// The 1-based source line the statement starts on.
    pub fn line(&self) -> usize {
        match self {
            Stmt::Assign { line, .. } | Stmt::Expr { line, .. } | Stmt::For { line, .. } => *line,
        }
    }
}

/// A parsed script: a sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Counts expressions in the program (used by optimizer tests).
    pub fn expr_count(&self) -> usize {
        fn count_expr(e: &Expr) -> usize {
            1 + match e {
                Expr::Number(_) | Expr::Var(_) => 0,
                Expr::Bin(_, a, b) => count_expr(a) + count_expr(b),
                Expr::Neg(a) | Expr::Call(_, a) => count_expr(a),
                Expr::Zeros(a, b) | Expr::Ones(a, b) => count_expr(a) + count_expr(b),
            }
        }
        fn count_stmt(s: &Stmt) -> usize {
            match s {
                Stmt::Assign { expr, .. } | Stmt::Expr { expr, .. } => count_expr(expr),
                Stmt::For { from, to, body, .. } => {
                    count_expr(from) + count_expr(to) + body.iter().map(count_stmt).sum::<usize>()
                }
            }
        }
        self.stmts.iter().map(count_stmt).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_fn_round_trip() {
        for f in [
            UnaryFn::Transpose,
            UnaryFn::RowMin,
            UnaryFn::Exp,
            UnaryFn::Log,
            UnaryFn::Sigmoid,
            UnaryFn::RowSums,
            UnaryFn::ColSums,
            UnaryFn::Sum,
            UnaryFn::Crossprod,
            UnaryFn::TCrossprod,
            UnaryFn::Ginv,
            UnaryFn::Materialize,
        ] {
            assert_eq!(UnaryFn::from_name(f.name()), Some(f));
        }
        assert_eq!(UnaryFn::from_name("nope"), None);
    }

    #[test]
    fn expr_count_walks_the_tree() {
        let p = Program {
            stmts: vec![Stmt::Assign {
                name: "x".into(),
                expr: Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Number(1.0)),
                    Box::new(Expr::Neg(Box::new(Expr::Var("y".into())))),
                ),
                line: 1,
            }],
        };
        assert_eq!(p.expr_count(), 4);
        assert_eq!(p.stmts[0].line(), 1);
    }
}
