//! Recursive-descent parser for the R-like LA subset.
//!
//! Operator precedence follows R: `^` (right-associative) binds tightest,
//! then unary minus, then `%*%`, then `*` `/`, then `+` `-`.

use crate::ast::{BinOp, Expr, Program, Stmt, UnaryFn};
use crate::token::{tokenize, LangError, Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t.map(|t| t.kind)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), LangError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(LangError::Parse {
                line: self.line(),
                msg: format!("expected {what}"),
            })
        }
    }

    fn skip_newlines(&mut self) {
        while self.eat(&TokenKind::Newline) {}
    }

    // ---- statements ----------------------------------------------------

    fn program(&mut self) -> Result<Program, LangError> {
        let mut stmts = Vec::new();
        self.skip_newlines();
        while self.peek().is_some() {
            stmts.push(self.stmt()?);
            // Statements are separated by newlines/semicolons or a brace.
            if self.peek().is_some()
                && !self.eat(&TokenKind::Newline)
                && self.peek() != Some(&TokenKind::RBrace)
            {
                return Err(LangError::Parse {
                    line: self.line(),
                    msg: "expected end of statement".into(),
                });
            }
            self.skip_newlines();
            if self.peek() == Some(&TokenKind::RBrace) {
                break;
            }
        }
        Ok(Program { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        if self.eat(&TokenKind::For) {
            return self.for_stmt(line);
        }
        // Lookahead for `ident =`.
        if let Some(TokenKind::Ident(name)) = self.peek().cloned() {
            if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Assign) {
                self.pos += 2;
                let value = self.expr()?;
                return Ok(Stmt::Assign {
                    name,
                    expr: value,
                    line,
                });
            }
        }
        Ok(Stmt::Expr {
            expr: self.expr()?,
            line,
        })
    }

    fn for_stmt(&mut self, line: usize) -> Result<Stmt, LangError> {
        self.expect(TokenKind::LParen, "'(' after for")?;
        let var = match self.bump() {
            Some(TokenKind::Ident(name)) => name,
            _ => {
                return Err(LangError::Parse {
                    line: self.line(),
                    msg: "expected loop variable".into(),
                })
            }
        };
        self.expect(TokenKind::In, "'in'")?;
        let from = self.expr_no_range()?;
        self.expect(TokenKind::Colon, "':' in range")?;
        let to = self.expr_no_range()?;
        self.expect(TokenKind::RParen, "')' after range")?;
        self.skip_newlines();
        self.expect(TokenKind::LBrace, "'{' to open loop body")?;
        let body = self.program()?.stmts;
        self.expect(TokenKind::RBrace, "'}' to close loop body")?;
        Ok(Stmt::For {
            var,
            from,
            to,
            body,
            line,
        })
    }

    // ---- expressions (precedence climbing) ------------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.comparison()
    }

    /// Expression without `:` at top level (used inside for-ranges).
    fn expr_no_range(&mut self) -> Result<Expr, LangError> {
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.add_sub()?;
        while self.eat(&TokenKind::EqEq) {
            let rhs = self.add_sub()?;
            lhs = Expr::Bin(BinOp::Eq, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add_sub(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_div()?;
        loop {
            if self.eat(&TokenKind::Plus) {
                let rhs = self.mul_div()?;
                lhs = Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.eat(&TokenKind::Minus) {
                let rhs = self.mul_div()?;
                lhs = Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_div(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.matmul()?;
        loop {
            if self.eat(&TokenKind::Star) {
                let rhs = self.matmul()?;
                lhs = Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.eat(&TokenKind::Slash) {
                let rhs = self.matmul()?;
                lhs = Expr::Bin(BinOp::Div, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn matmul(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        while self.eat(&TokenKind::MatMul) {
            let rhs = self.unary()?;
            lhs = Expr::Bin(BinOp::MatMul, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr, LangError> {
        let base = self.primary()?;
        if self.eat(&TokenKind::Caret) {
            // Right-associative, like R.
            let exponent = self.unary()?;
            return Ok(Expr::Bin(BinOp::Pow, Box::new(base), Box::new(exponent)));
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.bump() {
            Some(TokenKind::Number(v)) => Ok(Expr::Number(v)),
            Some(TokenKind::Ident(name)) => {
                if self.peek() == Some(&TokenKind::LParen) {
                    self.call(name, line)
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(TokenKind::LParen) => {
                let inner = self.expr()?;
                self.expect(TokenKind::RParen, "')'")?;
                Ok(inner)
            }
            Some(other) => Err(LangError::Parse {
                line,
                msg: format!("unexpected token {other:?}"),
            }),
            None => Err(LangError::Parse {
                line,
                msg: "unexpected end of input".to_string(),
            }),
        }
    }

    fn call(&mut self, name: String, line: usize) -> Result<Expr, LangError> {
        self.expect(TokenKind::LParen, "'('")?;
        let mut args = vec![self.expr()?];
        while self.eat(&TokenKind::Comma) {
            args.push(self.expr()?);
        }
        self.expect(TokenKind::RParen, "')' to close call")?;
        match name.as_str() {
            "zeros" | "ones" => {
                if args.len() != 2 {
                    return Err(LangError::Arity {
                        func: name,
                        expected: 2,
                        found: args.len(),
                    });
                }
                let cols = Box::new(args.pop().expect("two args"));
                let rows = Box::new(args.pop().expect("one arg"));
                Ok(if name == "zeros" {
                    Expr::Zeros(rows, cols)
                } else {
                    Expr::Ones(rows, cols)
                })
            }
            _ => match UnaryFn::from_name(&name) {
                Some(f) => {
                    if args.len() != 1 {
                        return Err(LangError::Arity {
                            func: name,
                            expected: 1,
                            found: args.len(),
                        });
                    }
                    Ok(Expr::Call(f, Box::new(args.pop().expect("one arg"))))
                }
                None => Err(LangError::Parse {
                    line,
                    msg: format!("unknown function '{name}'"),
                }),
            },
        }
    }
}

/// Parses a full script into a [`Program`].
pub fn parse(src: &str) -> Result<Program, LangError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let program = parser.program()?;
    if parser.peek().is_some() {
        return Err(LangError::Parse {
            line: parser.line(),
            msg: "trailing input after program".into(),
        });
    }
    Ok(program)
}

/// Parses a single expression (convenience for tests and REPL-style use).
pub fn parse_expr(src: &str) -> Result<Expr, LangError> {
    let program = parse(src)?;
    match program.stmts.as_slice() {
        [Stmt::Expr { expr, .. }] => Ok(expr.clone()),
        _ => Err(LangError::Parse {
            line: 1,
            msg: "expected a single expression".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_matmul_binds_tighter_than_mul() {
        // a * b %*% c  ==  a * (b %*% c)
        let e = parse_expr("a * b %*% c").unwrap();
        assert_eq!(
            e,
            Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::Var("a".into())),
                Box::new(Expr::Bin(
                    BinOp::MatMul,
                    Box::new(Expr::Var("b".into())),
                    Box::new(Expr::Var("c".into())),
                )),
            )
        );
    }

    #[test]
    fn precedence_add_is_loosest() {
        let e = parse_expr("a + b * c").unwrap();
        assert!(matches!(e, Expr::Bin(BinOp::Add, _, _)));
    }

    #[test]
    fn power_is_right_associative() {
        let e = parse_expr("a ^ b ^ c").unwrap();
        let Expr::Bin(BinOp::Pow, _, rhs) = e else {
            panic!("expected pow")
        };
        assert!(matches!(*rhs, Expr::Bin(BinOp::Pow, _, _)));
    }

    #[test]
    fn unary_minus_and_calls() {
        let e = parse_expr("-t(T) %*% p").unwrap();
        // Unary minus binds tighter than %*% in this grammar (like R's -x %*% y).
        assert!(matches!(e, Expr::Bin(BinOp::MatMul, _, _)));
        let e2 = parse_expr("exp(-x)").unwrap();
        assert_eq!(
            e2,
            Expr::Call(
                UnaryFn::Exp,
                Box::new(Expr::Neg(Box::new(Expr::Var("x".into()))))
            )
        );
    }

    #[test]
    fn assignment_both_spellings() {
        let p1 = parse("w = a + 1").unwrap();
        let p2 = parse("w <- a + 1").unwrap();
        assert_eq!(p1, p2);
        assert!(matches!(p1.stmts[0], Stmt::Assign { ref name, .. } if name == "w"));
    }

    #[test]
    fn for_loop_with_body() {
        let p = parse("for (i in 1:3) {\n  x = x + 1\n}\nx").unwrap();
        assert_eq!(p.stmts.len(), 2);
        let Stmt::For { var, body, .. } = &p.stmts[0] else {
            panic!("expected for")
        };
        assert_eq!(var, "i");
        assert_eq!(body.len(), 1);
        // Statements carry their source lines (for runtime error spans).
        assert_eq!(p.stmts[0].line(), 1);
        assert_eq!(body[0].line(), 2);
        assert_eq!(p.stmts[1].line(), 4);
    }

    #[test]
    fn zeros_and_ones_constructors() {
        let e = parse_expr("zeros(3, 2)").unwrap();
        assert!(matches!(e, Expr::Zeros(_, _)));
        let e = parse_expr("ones(n, 1)").unwrap();
        assert!(matches!(e, Expr::Ones(_, _)));
        assert!(matches!(
            parse_expr("zeros(1)"),
            Err(LangError::Arity { expected: 2, .. })
        ));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("x = 1\ny = (2").unwrap_err();
        assert!(matches!(err, LangError::Parse { line: 2, .. }));
        assert!(matches!(
            parse("q = frobnicate(x)"),
            Err(LangError::Parse { .. })
        ));
    }

    #[test]
    fn figure1_script_parses() {
        let script = r#"
            # Figure 1(c): logistic regression
            for (i in 1:20) {
                w = w + a * (t(T) %*% (Y / (1 + exp(Y * (T %*% w)))))
            }
            w
        "#;
        let p = parse(script).unwrap();
        assert_eq!(p.stmts.len(), 2);
    }
}
