//! Algebraic AST cleanups applied before evaluation.
//!
//! These are *language-level* optimizations in the sense of §3.2 footnote 3
//! (Morpheus in an interpreted environment): they do not change which
//! rewrite rules fire at runtime — the value-level dispatch does that — but
//! they remove syntactic redundancy a script author may introduce:
//!
//! * `t(t(x)) → x` — double-transpose elimination (the transpose *flag*
//!   makes single transposes free, but the AST node still costs a clone);
//! * scalar constant folding (`2 * 3 → 6`, `exp(0) → 1`);
//! * `x + 0`, `x * 1`, `x / 1` simplifications for scalar literals.
//!
//! The pass runs to **fixpoint**: rewrite passes repeat until the program
//! stops changing (with a safety cap), so a rewrite exposed by an earlier
//! one is never missed as the rule set grows. Statement source lines are
//! preserved verbatim, so runtime errors on optimized programs point at
//! the same script lines as on the original.

use crate::ast::{BinOp, Expr, Program, Stmt, UnaryFn};

/// Rewrite passes are repeated until the program stops changing; the cap
/// bounds pathological rule interactions (the current rule set converges
/// in one bottom-up pass, so hitting it would be a rule-set bug).
const MAX_PASSES: usize = 8;

/// Optimizes a whole program (to fixpoint).
pub fn optimize(program: &Program) -> Program {
    let mut current = opt_pass(program);
    for _ in 1..MAX_PASSES {
        let next = opt_pass(&current);
        if next == current {
            break;
        }
        current = next;
    }
    current
}

/// One bottom-up rewrite pass over every statement.
fn opt_pass(program: &Program) -> Program {
    Program {
        stmts: program.stmts.iter().map(opt_stmt).collect(),
    }
}

fn opt_stmt(stmt: &Stmt) -> Stmt {
    match stmt {
        Stmt::Assign { name, expr, line } => Stmt::Assign {
            name: name.clone(),
            expr: opt_expr(expr),
            line: *line,
        },
        Stmt::Expr { expr, line } => Stmt::Expr {
            expr: opt_expr(expr),
            line: *line,
        },
        Stmt::For {
            var,
            from,
            to,
            body,
            line,
        } => Stmt::For {
            var: var.clone(),
            from: opt_expr(from),
            to: opt_expr(to),
            body: body.iter().map(opt_stmt).collect(),
            line: *line,
        },
    }
}

fn opt_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Number(_) | Expr::Var(_) => expr.clone(),
        Expr::Neg(inner) => {
            let inner = opt_expr(inner);
            match inner {
                Expr::Number(v) => Expr::Number(-v),
                Expr::Neg(x) => *x, // --x → x
                other => Expr::Neg(Box::new(other)),
            }
        }
        Expr::Call(f, arg) => {
            let arg = opt_expr(arg);
            // Double-transpose elimination.
            if *f == UnaryFn::Transpose {
                if let Expr::Call(UnaryFn::Transpose, inner) = &arg {
                    return (**inner).clone();
                }
            }
            // Constant folding through scalar-safe functions.
            if let Expr::Number(v) = arg {
                let folded = match f {
                    UnaryFn::Exp => Some(v.exp()),
                    UnaryFn::Log => Some(v.ln()),
                    UnaryFn::Sigmoid => Some(1.0 / (1.0 + (-v).exp())),
                    UnaryFn::Sum | UnaryFn::Transpose => Some(v),
                    _ => None,
                };
                if let Some(out) = folded {
                    return Expr::Number(out);
                }
            }
            Expr::Call(*f, Box::new(arg))
        }
        Expr::Zeros(r, c) => Expr::Zeros(Box::new(opt_expr(r)), Box::new(opt_expr(c))),
        Expr::Ones(r, c) => Expr::Ones(Box::new(opt_expr(r)), Box::new(opt_expr(c))),
        Expr::Bin(op, lhs, rhs) => {
            let l = opt_expr(lhs);
            let r = opt_expr(rhs);
            // Constant folding.
            if let (Expr::Number(a), Expr::Number(b)) = (&l, &r) {
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul | BinOp::MatMul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Pow => a.powf(*b),
                    BinOp::Eq => {
                        if a == b {
                            1.0
                        } else {
                            0.0
                        }
                    }
                };
                return Expr::Number(v);
            }
            // Identity / annihilator simplifications with scalar literals.
            match (op, &l, &r) {
                (BinOp::Add, e, Expr::Number(z)) | (BinOp::Add, Expr::Number(z), e)
                    if *z == 0.0 =>
                {
                    return e.clone()
                }
                (BinOp::Sub, e, Expr::Number(z)) if *z == 0.0 => return e.clone(),
                (BinOp::Mul, e, Expr::Number(one)) | (BinOp::Mul, Expr::Number(one), e)
                    if *one == 1.0 =>
                {
                    return e.clone()
                }
                (BinOp::Div, e, Expr::Number(one)) if *one == 1.0 => return e.clone(),
                (BinOp::Pow, e, Expr::Number(one)) if *one == 1.0 => return e.clone(),
                _ => {}
            }
            Expr::Bin(*op, Box::new(l), Box::new(r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    fn opt(src: &str) -> Expr {
        opt_expr(&parse_expr(src).unwrap())
    }

    #[test]
    fn double_transpose_eliminated() {
        assert_eq!(opt("t(t(X))"), Expr::Var("X".into()));
        // Triple transpose leaves one.
        assert_eq!(
            opt("t(t(t(X)))"),
            Expr::Call(UnaryFn::Transpose, Box::new(Expr::Var("X".into())))
        );
    }

    #[test]
    fn scalar_constants_fold() {
        assert_eq!(opt("2 * 3 + 4"), Expr::Number(10.0));
        assert_eq!(opt("exp(0)"), Expr::Number(1.0));
        assert_eq!(opt("--5"), Expr::Number(5.0));
    }

    #[test]
    fn identities_simplify() {
        assert_eq!(opt("X + 0"), Expr::Var("X".into()));
        assert_eq!(opt("1 * X"), Expr::Var("X".into()));
        assert_eq!(opt("X / 1"), Expr::Var("X".into()));
        assert_eq!(opt("X ^ 1"), Expr::Var("X".into()));
    }

    #[test]
    fn non_constant_structure_preserved() {
        let e = opt("t(T) %*% p");
        assert!(matches!(e, Expr::Bin(BinOp::MatMul, _, _)));
    }

    #[test]
    fn optimize_reaches_a_fixpoint_and_is_idempotent() {
        for src in [
            "t(t(t(t(X)))) * 1 + 0 * 1",
            "w = w + a * (t(T) %*% (Y / (1 + exp(Y * (T %*% w)))))",
            "for (i in 1:3) { x = (x + 0) / 1 }\n--x ^ 1",
        ] {
            let p = parse(src).unwrap();
            let once = optimize(&p);
            let twice = optimize(&once);
            assert_eq!(once, twice, "optimize not a fixpoint for {src:?}");
        }
    }

    #[test]
    fn optimizer_preserves_statement_lines() {
        let p = parse("a = 1 * 1\nb = t(t(X))\nfor (i in 1:2) {\n  c = a + 0\n}").unwrap();
        let po = optimize(&p);
        for (s, so) in p.stmts.iter().zip(&po.stmts) {
            assert_eq!(s.line(), so.line());
        }
        let (Stmt::For { body, .. }, Stmt::For { body: bo, .. }) = (&p.stmts[2], &po.stmts[2])
        else {
            panic!("expected for statements");
        };
        assert_eq!(body[0].line(), bo[0].line());
    }

    #[test]
    fn optimized_program_evaluates_identically() {
        use crate::eval::{eval_program, Env, Value};
        use morpheus_dense::DenseMatrix;
        let src = "y = t(t(X)) * 1 + 0\nsum(y) + 2 * 3";
        let p = parse(src).unwrap();
        let po = optimize(&p);
        assert!(po.expr_count() < p.expr_count());
        let x = DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let mut e1 = Env::new();
        e1.bind("X", Value::Dense(x.clone()));
        let mut e2 = Env::new();
        e2.bind("X", Value::Dense(x));
        let v1 = eval_program(&p, &mut e1).unwrap().as_scalar().unwrap();
        let v2 = eval_program(&po, &mut e2).unwrap().as_scalar().unwrap();
        assert_eq!(v1, v2);
    }
}
