//! Holistic script-level planning: common-subexpression elimination,
//! element-wise fusion, whole-script materialize verdicts, and a keyed
//! plan cache.
//!
//! The per-operator planner ([`morpheus_core::PlannedMatrix`]) is greedy:
//! every call compares the factorized rewrite against the materialized
//! route *in isolation*. A script sees more: the same subexpression may be
//! evaluated many times (loop-invariant factors like `t(T)` in gradient
//! descent), chains of scalar operators each allocate an intermediate, and
//! a join that loses to every individual operator can still win once its
//! one-time cost is compared against the *sum* of per-use deltas. This
//! module plans at that level:
//!
//! 1. **CSE** — the optimized AST is hash-consed into a DAG
//!    ([`plan_program`]); at evaluation time each distinct node is
//!    computed once and reused until a variable it reads is rebound
//!    (per-variable generation stamps), so repeated subexpressions and
//!    loop-invariant factors are evaluated once instead of per use.
//! 2. **Element-wise fusion** — adjacent scalar-operator links
//!    (`T*2 + 1`, `1 + exp(..)`, `-x`, `sigmoid(..)`) are folded into one
//!    fused node. On dense and scalar values the whole chain runs as a
//!    single pass (one allocation instead of one per link); on normalized
//!    values the chain replays through the per-operator planner link by
//!    link, so routing decisions — and therefore numerics — are exactly
//!    the interpreter's.
//! 3. **Whole-script materialize verdicts** — every operator the script
//!    will apply to a normalized free variable is collected (loop bodies
//!    multiplied by their trip counts, transposed views mapped through
//!    [`OpKind::dual`]) and handed to
//!    [`morpheus_core::PlannedMatrix::plan_script`]; an up-front
//!    materialize verdict is applied by [`eval_plan`] via
//!    `prematerialize`, which affects scheduling only, never numerics.
//! 4. **Plan cache** — plans are memoized process-wide under a key built
//!    from the canonicalized program structure (source lines excluded),
//!    the free variables' signatures (scalar value bits, matrix shapes,
//!    normalized part shapes/sparsity/nnz and strategy), and the machine
//!    profile's format version. `MORPHEUS_PLAN_CACHE=off` disables it;
//!    [`plan_cache_stats`] exposes hit/miss counters.

use crate::ast::{BinOp, Expr, Program, Stmt, UnaryFn};
use crate::eval::{eval_bin, eval_call, expect_scalar, Env, Value};
use crate::optimize::optimize;
use crate::token::LangError;
use morpheus_core::cost::OpKind;
use morpheus_core::{PlannedMatrix, ScriptDecision, Strategy, PROFILE_FORMAT_VERSION};
use morpheus_dense::DenseMatrix;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Environment variable gating the process-wide plan cache: set to `off`
/// (also `0`, `false`, `no`; case-insensitive) to plan every script from
/// scratch. Read once, at first use, like the other `MORPHEUS_*` knobs.
pub const PLAN_CACHE_ENV: &str = "MORPHEUS_PLAN_CACHE";

/// Entries kept in the process-wide plan cache before it is cleared
/// wholesale (plans are small; whole-cache eviction keeps the bookkeeping
/// trivial and bounds memory).
const PLAN_CACHE_CAPACITY: usize = 1024;

/// Loop trip counts beyond this are counted as this many repetitions when
/// collecting per-variable operator uses (the verdict has long converged
/// by then, and the greedy simulation in `estimate_script` is linear in
/// the use count).
const MAX_COUNTED_TRIPS: u64 = 64;

/// Hard cap on the collected use list per normalized variable.
const MAX_USES_PER_VAR: usize = 4096;

// ---------------------------------------------------------------------
// The plan IR: a hash-consed DAG with fused scalar chains
// ---------------------------------------------------------------------

/// One link of a fused element-wise chain, with the scalar operand baked
/// in. Application mirrors the interpreter's dispatch exactly: on scalar
/// values the `(op, scalar, scalar)` arm of `eval_bin`, on dense values
/// the `DenseMatrix` scalar kernels (including their `x^2 → x*x` special
/// case), and on normalized values the corresponding `PlannedMatrix`
/// closure operator.
#[derive(Debug, Clone, Copy)]
enum ScalarStep {
    /// `x + c`.
    AddC(f64),
    /// `x - c`.
    SubC(f64),
    /// `c - x`.
    RsubC(f64),
    /// `x * c` (also `-x` as `x * -1` and `%*%` with a scalar literal).
    MulC(f64),
    /// `x / c`.
    DivC(f64),
    /// `c / x`.
    RdivC(f64),
    /// `x ^ c`.
    PowC(f64),
    /// `c ^ x`.
    RpowC(f64),
    /// `exp(x)`.
    Exp,
    /// `log(x)`.
    Log,
    /// `sigmoid(x)`.
    Sigmoid,
}

impl ScalarStep {
    /// A hashable identity: variant code plus the operand's bit pattern.
    fn code_bits(self) -> (u8, u64) {
        match self {
            ScalarStep::AddC(c) => (0, c.to_bits()),
            ScalarStep::SubC(c) => (1, c.to_bits()),
            ScalarStep::RsubC(c) => (2, c.to_bits()),
            ScalarStep::MulC(c) => (3, c.to_bits()),
            ScalarStep::DivC(c) => (4, c.to_bits()),
            ScalarStep::RdivC(c) => (5, c.to_bits()),
            ScalarStep::PowC(c) => (6, c.to_bits()),
            ScalarStep::RpowC(c) => (7, c.to_bits()),
            ScalarStep::Exp => (8, 0),
            ScalarStep::Log => (9, 0),
            ScalarStep::Sigmoid => (10, 0),
        }
    }

    /// The step on a scalar value — the `(op, Scalar, Scalar)` arms of
    /// `eval_bin` (`^` is always `powf` there, with no square special
    /// case).
    fn apply_scalar(self, x: f64) -> f64 {
        match self {
            ScalarStep::AddC(c) => x + c,
            ScalarStep::SubC(c) => x - c,
            ScalarStep::RsubC(c) => c - x,
            ScalarStep::MulC(c) => x * c,
            ScalarStep::DivC(c) => x / c,
            ScalarStep::RdivC(c) => c / x,
            ScalarStep::PowC(c) => x.powf(c),
            ScalarStep::RpowC(c) => c.powf(x),
            ScalarStep::Exp => x.exp(),
            ScalarStep::Log => x.ln(),
            ScalarStep::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// The step on one matrix element. Identical to [`Self::apply_scalar`]
    /// except `^2`, which the dense and sparse scalar-pow kernels compute
    /// as `x * x` — the fused pass must match them bit for bit.
    fn apply_elem(self, x: f64) -> f64 {
        match self {
            ScalarStep::PowC(2.0) => x * x,
            other => other.apply_scalar(x),
        }
    }

    /// The step on a planned normalized matrix: exactly the call the
    /// interpreter's dispatch would have made, so per-operator routing
    /// (and with it bit-identity) is preserved.
    fn apply_planned(self, t: &PlannedMatrix) -> PlannedMatrix {
        match self {
            ScalarStep::AddC(c) => t.scalar_add(c),
            ScalarStep::SubC(c) => t.scalar_sub(c),
            ScalarStep::RsubC(c) => t.scalar_rsub(c),
            ScalarStep::MulC(c) => t.scalar_mul(c),
            ScalarStep::DivC(c) => t.scalar_div(c),
            ScalarStep::RdivC(c) => t.scalar_rdiv(c),
            ScalarStep::PowC(c) => t.scalar_pow(c),
            ScalarStep::RpowC(c) => t.map(move |v| c.powf(v)),
            ScalarStep::Exp => t.exp(),
            ScalarStep::Log => t.ln(),
            ScalarStep::Sigmoid => t.map(|x| 1.0 / (1.0 + (-x).exp())),
        }
    }
}

impl PartialEq for ScalarStep {
    fn eq(&self, other: &Self) -> bool {
        self.code_bits() == other.code_bits()
    }
}

impl Eq for ScalarStep {}

impl Hash for ScalarStep {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.code_bits().hash(state);
    }
}

/// A DAG node. Variables are interned (`u32` indices into
/// [`ScriptPlan::vars`]), literals carry their bit pattern so the node is
/// hashable, and fused chains keep their base plus the step list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum NodeKind {
    /// A literal, as `f64` bits.
    Number(u64),
    /// A variable read.
    Var(u32),
    /// A binary operator that did not fuse.
    Bin(BinOp, usize, usize),
    /// A unary builtin that did not fuse (`t`, aggregations, `ginv`, ...).
    Call(UnaryFn, usize),
    /// `zeros(r, c)`.
    Zeros(usize, usize),
    /// `ones(r, c)`.
    Ones(usize, usize),
    /// A fused element-wise chain over a base node.
    Fused(usize, Box<[ScalarStep]>),
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    /// Sorted variable ids this subtree reads — the CSE invalidation set.
    deps: Box<[u32]>,
}

/// A statement over DAG nodes; source lines ride along so runtime errors
/// on planned programs point at the same script lines as on the
/// interpreter.
#[derive(Debug, Clone)]
enum PStmt {
    Assign {
        var: u32,
        node: usize,
        line: usize,
    },
    Expr {
        node: usize,
        line: usize,
    },
    For {
        var: u32,
        from: usize,
        to: usize,
        body: Vec<PStmt>,
        line: usize,
    },
}

impl PStmt {
    fn line(&self) -> usize {
        match self {
            PStmt::Assign { line, .. } | PStmt::Expr { line, .. } | PStmt::For { line, .. } => {
                *line
            }
        }
    }
}

/// A compiled script: the hash-consed DAG, the statement list over it,
/// and the whole-script materialize verdicts for the environment it was
/// planned against. Build one with [`plan_program`], run it with
/// [`eval_plan`] (or both at once with [`run_program`]).
#[derive(Debug, Clone)]
pub struct ScriptPlan {
    nodes: Vec<Node>,
    stmts: Vec<PStmt>,
    vars: Vec<String>,
    premat: Vec<(String, ScriptDecision)>,
}

impl ScriptPlan {
    /// Number of distinct DAG nodes (repeated subexpressions share one).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of fused element-wise chains of at least two links.
    pub fn fused_chain_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(&n.kind, NodeKind::Fused(_, steps) if steps.len() >= 2))
            .count()
    }

    /// The whole-script verdicts reached for normalized free variables:
    /// one entry per variable the cost-based planner was asked about.
    /// Variables with `materialize_upfront` are pre-materialized by
    /// [`eval_plan`].
    pub fn premat_decisions(&self) -> &[(String, ScriptDecision)] {
        &self.premat
    }
}

// ---------------------------------------------------------------------
// Lowering: AST -> hash-consed DAG with fusion
// ---------------------------------------------------------------------

#[derive(Default)]
struct Lowering {
    nodes: Vec<Node>,
    cons: HashMap<NodeKind, usize>,
    vars: Vec<String>,
    var_ids: HashMap<String, u32>,
}

impl Lowering {
    fn var_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.var_ids.get(name) {
            return id;
        }
        let id = self.vars.len() as u32;
        self.vars.push(name.to_string());
        self.var_ids.insert(name.to_string(), id);
        id
    }

    fn deps_of(&self, kind: &NodeKind) -> Box<[u32]> {
        fn merge(a: &[u32], b: &[u32]) -> Box<[u32]> {
            let mut out: Vec<u32> = a.iter().chain(b).copied().collect();
            out.sort_unstable();
            out.dedup();
            out.into()
        }
        match kind {
            NodeKind::Number(_) => Box::from([]),
            NodeKind::Var(v) => Box::from([*v]),
            NodeKind::Bin(_, l, r) | NodeKind::Zeros(l, r) | NodeKind::Ones(l, r) => {
                merge(&self.nodes[*l].deps, &self.nodes[*r].deps)
            }
            NodeKind::Call(_, a) | NodeKind::Fused(a, _) => self.nodes[*a].deps.clone(),
        }
    }

    fn intern(&mut self, kind: NodeKind) -> usize {
        if let Some(&id) = self.cons.get(&kind) {
            return id;
        }
        let deps = self.deps_of(&kind);
        let id = self.nodes.len();
        self.nodes.push(Node {
            kind: kind.clone(),
            deps,
        });
        self.cons.insert(kind, id);
        id
    }

    /// The literal value of a node, when it is one.
    fn literal(&self, id: usize) -> Option<f64> {
        match self.nodes[id].kind {
            NodeKind::Number(bits) => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// Appends one step to `base`, extending an existing fused chain.
    fn step_onto(&mut self, base: usize, step: ScalarStep) -> usize {
        let kind = match &self.nodes[base].kind {
            NodeKind::Fused(inner, steps) => {
                let mut all = steps.to_vec();
                all.push(step);
                NodeKind::Fused(*inner, all.into())
            }
            _ => NodeKind::Fused(base, Box::from([step])),
        };
        self.intern(kind)
    }

    fn lower_expr(&mut self, expr: &Expr) -> usize {
        match expr {
            Expr::Number(v) => self.intern(NodeKind::Number(v.to_bits())),
            Expr::Var(name) => {
                let v = self.var_id(name);
                self.intern(NodeKind::Var(v))
            }
            // The interpreter evaluates `-x` as `(-1) * x`; fuse it the
            // same way (IEEE multiplication is commutative bitwise).
            Expr::Neg(inner) => {
                let base = self.lower_expr(inner);
                self.step_onto(base, ScalarStep::MulC(-1.0))
            }
            Expr::Call(f, arg) => {
                let base = self.lower_expr(arg);
                match f {
                    UnaryFn::Exp => self.step_onto(base, ScalarStep::Exp),
                    UnaryFn::Log => self.step_onto(base, ScalarStep::Log),
                    UnaryFn::Sigmoid => self.step_onto(base, ScalarStep::Sigmoid),
                    _ => self.intern(NodeKind::Call(*f, base)),
                }
            }
            Expr::Zeros(r, c) => {
                let (rn, cn) = (self.lower_expr(r), self.lower_expr(c));
                self.intern(NodeKind::Zeros(rn, cn))
            }
            Expr::Ones(r, c) => {
                let (rn, cn) = (self.lower_expr(r), self.lower_expr(c));
                self.intern(NodeKind::Ones(rn, cn))
            }
            Expr::Bin(op, lhs, rhs) => {
                let l = self.lower_expr(lhs);
                let r = self.lower_expr(rhs);
                // A binary op with one literal operand is a fusable
                // scalar link (`%*%` with a scalar recycles to `*`, as in
                // the interpreter). `==` is never fused: its matrix form
                // is an indicator build, not a scalar chain.
                let step = match (op, self.literal(l), self.literal(r)) {
                    (BinOp::Add, _, Some(c)) => Some((l, ScalarStep::AddC(c))),
                    (BinOp::Add, Some(c), _) => Some((r, ScalarStep::AddC(c))),
                    (BinOp::Sub, _, Some(c)) => Some((l, ScalarStep::SubC(c))),
                    (BinOp::Sub, Some(c), _) => Some((r, ScalarStep::RsubC(c))),
                    (BinOp::Mul | BinOp::MatMul, _, Some(c)) => Some((l, ScalarStep::MulC(c))),
                    (BinOp::Mul | BinOp::MatMul, Some(c), _) => Some((r, ScalarStep::MulC(c))),
                    (BinOp::Div, _, Some(c)) => Some((l, ScalarStep::DivC(c))),
                    (BinOp::Div, Some(c), _) => Some((r, ScalarStep::RdivC(c))),
                    (BinOp::Pow, _, Some(c)) => Some((l, ScalarStep::PowC(c))),
                    (BinOp::Pow, Some(c), _) => Some((r, ScalarStep::RpowC(c))),
                    _ => None,
                };
                match step {
                    Some((base, s)) => self.step_onto(base, s),
                    None => self.intern(NodeKind::Bin(*op, l, r)),
                }
            }
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> PStmt {
        match stmt {
            Stmt::Assign { name, expr, line } => {
                let node = self.lower_expr(expr);
                PStmt::Assign {
                    var: self.var_id(name),
                    node,
                    line: *line,
                }
            }
            Stmt::Expr { expr, line } => PStmt::Expr {
                node: self.lower_expr(expr),
                line: *line,
            },
            Stmt::For {
                var,
                from,
                to,
                body,
                line,
            } => {
                let from = self.lower_expr(from);
                let to = self.lower_expr(to);
                let body = body.iter().map(|s| self.lower_stmt(s)).collect();
                PStmt::For {
                    var: self.var_id(var),
                    from,
                    to,
                    body,
                    line: *line,
                }
            }
        }
    }
}

/// Lowers an (already optimized) program into a plan skeleton: DAG +
/// statements, with the premat verdicts still empty.
fn lower(program: &Program) -> ScriptPlan {
    let mut lowering = Lowering::default();
    let stmts = program
        .stmts
        .iter()
        .map(|s| lowering.lower_stmt(s))
        .collect();
    // Chain-building leaves prefix Fused nodes (`T^2` inside
    // `T^2 / 3`) that nothing references; sweep them so node counts,
    // chain counts, and cache keys reflect only live structure.
    let (nodes, stmts) = sweep(lowering.nodes, stmts);
    ScriptPlan {
        nodes,
        stmts,
        vars: lowering.vars,
        premat: Vec::new(),
    }
}

fn mark_node(nodes: &[Node], id: usize, live: &mut [bool]) {
    if live[id] {
        return;
    }
    live[id] = true;
    match &nodes[id].kind {
        NodeKind::Number(_) | NodeKind::Var(_) => {}
        NodeKind::Bin(_, l, r) | NodeKind::Zeros(l, r) | NodeKind::Ones(l, r) => {
            mark_node(nodes, *l, live);
            mark_node(nodes, *r, live);
        }
        NodeKind::Call(_, a) | NodeKind::Fused(a, _) => mark_node(nodes, *a, live),
    }
}

fn mark_stmts(nodes: &[Node], stmts: &[PStmt], live: &mut [bool]) {
    for s in stmts {
        match s {
            PStmt::Assign { node, .. } | PStmt::Expr { node, .. } => mark_node(nodes, *node, live),
            PStmt::For { from, to, body, .. } => {
                mark_node(nodes, *from, live);
                mark_node(nodes, *to, live);
                mark_stmts(nodes, body, live);
            }
        }
    }
}

fn remap_stmts(stmts: Vec<PStmt>, remap: &[usize]) -> Vec<PStmt> {
    stmts
        .into_iter()
        .map(|s| match s {
            PStmt::Assign { var, node, line } => PStmt::Assign {
                var,
                node: remap[node],
                line,
            },
            PStmt::Expr { node, line } => PStmt::Expr {
                node: remap[node],
                line,
            },
            PStmt::For {
                var,
                from,
                to,
                body,
                line,
            } => PStmt::For {
                var,
                from: remap[from],
                to: remap[to],
                body: remap_stmts(body, remap),
                line,
            },
        })
        .collect()
}

/// Drops nodes unreachable from any statement, compacting indices
/// (children still precede parents afterwards).
fn sweep(nodes: Vec<Node>, stmts: Vec<PStmt>) -> (Vec<Node>, Vec<PStmt>) {
    let mut live = vec![false; nodes.len()];
    mark_stmts(&nodes, &stmts, &mut live);
    let mut remap = vec![usize::MAX; nodes.len()];
    let mut out = Vec::with_capacity(nodes.len());
    for (i, node) in nodes.into_iter().enumerate() {
        if !live[i] {
            continue;
        }
        let kind = match node.kind {
            NodeKind::Bin(op, l, r) => NodeKind::Bin(op, remap[l], remap[r]),
            NodeKind::Zeros(l, r) => NodeKind::Zeros(remap[l], remap[r]),
            NodeKind::Ones(l, r) => NodeKind::Ones(remap[l], remap[r]),
            NodeKind::Call(f, a) => NodeKind::Call(f, remap[a]),
            NodeKind::Fused(a, steps) => NodeKind::Fused(remap[a], steps),
            leaf => leaf,
        };
        remap[i] = out.len();
        out.push(Node {
            kind,
            deps: node.deps,
        });
    }
    let stmts = remap_stmts(stmts, &remap);
    (out, stmts)
}

// ---------------------------------------------------------------------
// Whole-script materialize verdicts
// ---------------------------------------------------------------------

/// Best-effort static shape of a node, given the planning environment.
/// `View` tracks a normalized free variable through transposes and
/// element-wise derivations, so operator uses can be attributed back to
/// it (dualized per transpose).
#[derive(Debug, Clone, Copy)]
enum Shape {
    /// A scalar with a known value (literal or unrebound env scalar).
    Num(f64),
    /// A scalar of unknown value.
    Scalar,
    /// A regular matrix of known dimensions.
    Mat(usize, usize),
    /// A (possibly transposed / element-wise-derived) view of a
    /// normalized free variable, with effective dimensions.
    View {
        var: u32,
        transposed: bool,
        rows: usize,
        cols: usize,
    },
    /// Anything the static pass cannot pin down.
    Unknown,
}

impl Shape {
    fn is_scalar(self) -> bool {
        matches!(self, Shape::Num(_) | Shape::Scalar)
    }

    fn dims(self) -> Option<(usize, usize)> {
        match self {
            Shape::Mat(r, c)
            | Shape::View {
                rows: r, cols: c, ..
            } => Some((r, c)),
            _ => None,
        }
    }

    fn rows(self) -> Option<usize> {
        self.dims().map(|(r, _)| r)
    }

    fn cols(self) -> Option<usize> {
        self.dims().map(|(_, c)| c)
    }
}

/// Variables assigned anywhere in the program, split by how: `assigned`
/// (targets of `=`, value statically unknown) and `loops` (loop
/// variables, always scalar during evaluation). Planning-time env
/// bindings describe neither.
fn assigned_vars(stmts: &[PStmt], assigned: &mut HashSet<u32>, loops: &mut HashSet<u32>) {
    for s in stmts {
        match s {
            PStmt::Assign { var, .. } => {
                assigned.insert(*var);
            }
            PStmt::Expr { .. } => {}
            PStmt::For { var, body, .. } => {
                loops.insert(*var);
                assigned_vars(body, assigned, loops);
            }
        }
    }
}

/// One forward pass over the DAG (children always precede parents) that
/// mirrors the interpreter's shape behavior.
fn infer_shapes(
    plan: &ScriptPlan,
    env: &Env,
    assigned: &HashSet<u32>,
    loops: &HashSet<u32>,
) -> Vec<Shape> {
    let mut shapes: Vec<Shape> = Vec::with_capacity(plan.nodes.len());
    for node in &plan.nodes {
        let shape = match &node.kind {
            NodeKind::Number(bits) => Shape::Num(f64::from_bits(*bits)),
            NodeKind::Var(v) => {
                if assigned.contains(v) {
                    Shape::Unknown
                } else if loops.contains(v) {
                    Shape::Scalar
                } else {
                    match env.get(&plan.vars[*v as usize]) {
                        Some(Value::Scalar(x)) => Shape::Num(*x),
                        Some(Value::Dense(m)) => {
                            let (r, c) = m.shape();
                            Shape::Mat(r, c)
                        }
                        Some(Value::Normalized(p)) => {
                            let (r, c) = p.shape();
                            Shape::View {
                                var: *v,
                                transposed: false,
                                rows: r,
                                cols: c,
                            }
                        }
                        None => Shape::Unknown,
                    }
                }
            }
            NodeKind::Fused(base, steps) => match shapes[*base] {
                Shape::Num(x) => Shape::Num(steps.iter().fold(x, |acc, s| s.apply_scalar(acc))),
                other => other,
            },
            NodeKind::Call(f, a) => {
                let sa = shapes[*a];
                match f {
                    UnaryFn::Transpose => match sa {
                        Shape::Mat(r, c) => Shape::Mat(c, r),
                        Shape::View {
                            var,
                            transposed,
                            rows,
                            cols,
                        } => Shape::View {
                            var,
                            transposed: !transposed,
                            rows: cols,
                            cols: rows,
                        },
                        s if s.is_scalar() => s,
                        _ => Shape::Unknown,
                    },
                    UnaryFn::RowSums | UnaryFn::RowMin => {
                        sa.rows().map_or(Shape::Unknown, |r| Shape::Mat(r, 1))
                    }
                    UnaryFn::ColSums => sa.cols().map_or(Shape::Unknown, |c| Shape::Mat(1, c)),
                    UnaryFn::Sum => Shape::Scalar,
                    UnaryFn::Crossprod => sa.cols().map_or(Shape::Unknown, |c| Shape::Mat(c, c)),
                    UnaryFn::TCrossprod => sa.rows().map_or(Shape::Unknown, |r| Shape::Mat(r, r)),
                    UnaryFn::Ginv => sa.dims().map_or(Shape::Unknown, |(r, c)| Shape::Mat(c, r)),
                    UnaryFn::Materialize => {
                        sa.dims().map_or(Shape::Unknown, |(r, c)| Shape::Mat(r, c))
                    }
                    // Lowering turns these into fused steps; keep the
                    // shape-preserving behavior for completeness.
                    UnaryFn::Exp | UnaryFn::Log | UnaryFn::Sigmoid => sa,
                }
            }
            NodeKind::Bin(op, l, r) => {
                let (a, b) = (shapes[*l], shapes[*r]);
                match op {
                    BinOp::MatMul => {
                        if a.is_scalar() {
                            b
                        } else if b.is_scalar() {
                            a
                        } else {
                            match (a.rows(), b.cols()) {
                                (Some(r), Some(c)) => Shape::Mat(r, c),
                                _ => Shape::Unknown,
                            }
                        }
                    }
                    // `==` yields a regular indicator matrix (or scalar).
                    BinOp::Eq => match a.dims().or(b.dims()) {
                        Some((r, c)) => Shape::Mat(r, c),
                        None => Shape::Scalar,
                    },
                    _ => {
                        if a.is_scalar() && b.is_scalar() {
                            Shape::Scalar
                        } else if a.is_scalar() {
                            b
                        } else if b.is_scalar() {
                            a
                        } else {
                            // Matrix ∘ matrix leaves the normalized
                            // representation (§3.3.7 fallback → dense).
                            match a.dims().or(b.dims()) {
                                Some((r, c)) => Shape::Mat(r, c),
                                None => Shape::Unknown,
                            }
                        }
                    }
                }
            }
            NodeKind::Zeros(r, c) | NodeKind::Ones(r, c) => match (shapes[*r], shapes[*c]) {
                (Shape::Num(rv), Shape::Num(cv)) => Shape::Mat(rv as usize, cv as usize),
                _ => Shape::Unknown,
            },
        };
        shapes.push(shape);
    }
    shapes
}

/// Simulates one evaluation of the program over the DAG — with the same
/// once-per-epoch reuse the CSE evaluator applies — and collects, per
/// normalized free variable, the ordered operator uses the per-operator
/// planner will be asked to route.
struct UseSim<'p> {
    plan: &'p ScriptPlan,
    shapes: &'p [Shape],
    stamps: Vec<u64>,
    node_stamp: Vec<Option<u64>>,
    clock: u64,
    uses: HashMap<u32, Vec<OpKind>>,
}

impl UseSim<'_> {
    fn bump(&mut self, var: u32) {
        self.clock += 1;
        self.stamps[var as usize] = self.clock;
    }

    fn push(&mut self, var: u32, op: OpKind, transposed: bool, mult: u64) {
        let op = if transposed { op.dual() } else { op };
        let list = self.uses.entry(var).or_default();
        let n = mult.min(MAX_COUNTED_TRIPS * MAX_COUNTED_TRIPS) as usize;
        for _ in 0..n {
            if list.len() >= MAX_USES_PER_VAR {
                return;
            }
            list.push(op);
        }
    }

    fn walk_stmts(&mut self, stmts: &[PStmt], mult: u64) {
        for stmt in stmts {
            match stmt {
                PStmt::Assign { var, node, .. } => {
                    self.visit(*node, mult);
                    self.bump(*var);
                }
                PStmt::Expr { node, .. } => self.visit(*node, mult),
                PStmt::For {
                    var,
                    from,
                    to,
                    body,
                    ..
                } => {
                    self.visit(*from, mult);
                    self.visit(*to, mult);
                    let trips = match (self.shapes[*from], self.shapes[*to]) {
                        (Shape::Num(lo), Shape::Num(hi)) => {
                            ((hi.round() as i64) - (lo.round() as i64) + 1).max(0) as u64
                        }
                        _ => 1,
                    };
                    // First trip: everything not yet computed runs once.
                    // Remaining trips: only nodes invalidated by the loop
                    // (depending on the loop variable or variables
                    // assigned in the body) are recounted — exactly the
                    // loop-invariant hoisting the evaluator performs.
                    if trips >= 1 {
                        self.bump(*var);
                        self.walk_stmts(body, mult);
                    }
                    if trips >= 2 {
                        self.bump(*var);
                        let rest = (trips - 1).min(MAX_COUNTED_TRIPS);
                        self.walk_stmts(body, mult.saturating_mul(rest));
                    }
                }
            }
        }
    }

    fn visit(&mut self, id: usize, mult: u64) {
        if let Some(stamp) = self.node_stamp[id] {
            let fresh = self.plan.nodes[id]
                .deps
                .iter()
                .all(|&d| self.stamps[d as usize] <= stamp);
            if fresh {
                return;
            }
        }
        match &self.plan.nodes[id].kind {
            NodeKind::Number(_) | NodeKind::Var(_) => {}
            NodeKind::Zeros(r, c) | NodeKind::Ones(r, c) => {
                let (r, c) = (*r, *c);
                self.visit(r, mult);
                self.visit(c, mult);
            }
            NodeKind::Fused(base, steps) => {
                let (base, links) = (*base, steps.len() as u64);
                self.visit(base, mult);
                if let Shape::View {
                    var, transposed, ..
                } = self.shapes[base]
                {
                    self.push(
                        var,
                        OpKind::Elementwise,
                        transposed,
                        mult.saturating_mul(links),
                    );
                }
            }
            NodeKind::Call(f, a) => {
                let (f, a) = (*f, *a);
                self.visit(a, mult);
                self.attribute_call(f, self.shapes[a], mult);
            }
            NodeKind::Bin(op, l, r) => {
                let (op, l, r) = (*op, *l, *r);
                self.visit(l, mult);
                self.visit(r, mult);
                self.attribute_bin(op, self.shapes[l], self.shapes[r], mult);
            }
        }
        self.node_stamp[id] = Some(self.clock);
    }

    fn attribute_call(&mut self, f: UnaryFn, a: Shape, mult: u64) {
        let Shape::View {
            var, transposed, ..
        } = a
        else {
            return;
        };
        let op = match f {
            UnaryFn::RowSums => OpKind::RowSums,
            UnaryFn::ColSums => OpKind::ColSums,
            UnaryFn::RowMin => OpKind::RowMin,
            UnaryFn::Sum => OpKind::Sum,
            UnaryFn::Crossprod => OpKind::Crossprod,
            UnaryFn::TCrossprod => OpKind::Tcrossprod,
            UnaryFn::Ginv => OpKind::Ginv,
            // Transpose is a free flag flip; materialize is not a routing
            // decision; the element-wise calls were lowered to steps.
            UnaryFn::Transpose
            | UnaryFn::Materialize
            | UnaryFn::Exp
            | UnaryFn::Log
            | UnaryFn::Sigmoid => return,
        };
        self.push(var, op, transposed, mult);
    }

    fn attribute_bin(&mut self, op: BinOp, a: Shape, b: Shape, mult: u64) {
        match op {
            BinOp::MatMul => match (a, b) {
                (
                    Shape::View {
                        var, transposed, ..
                    },
                    rhs,
                ) if !rhs.is_scalar() => {
                    let op = if matches!(rhs, Shape::View { .. }) {
                        OpKind::Dmm {
                            m: rhs.cols().unwrap_or(1),
                        }
                    } else {
                        OpKind::Lmm {
                            m: rhs.cols().unwrap_or(1),
                        }
                    };
                    self.push(var, op, transposed, mult);
                }
                (
                    lhs,
                    Shape::View {
                        var, transposed, ..
                    },
                ) if !lhs.is_scalar() => {
                    let op = OpKind::Rmm {
                        m: lhs.rows().unwrap_or(1),
                    };
                    self.push(var, op, transposed, mult);
                }
                (
                    Shape::View {
                        var, transposed, ..
                    },
                    _,
                )
                | (
                    _,
                    Shape::View {
                        var, transposed, ..
                    },
                ) => {
                    // Scalar recycling: `%*%` with a scalar is `*`.
                    self.push(var, OpKind::Elementwise, transposed, mult);
                }
                _ => {}
            },
            // `==` with a normalized operand materializes directly — a
            // forced route, not a planner decision.
            BinOp::Eq => {}
            _ => match (a, b) {
                (
                    Shape::View {
                        var, transposed, ..
                    },
                    other,
                )
                | (
                    other,
                    Shape::View {
                        var, transposed, ..
                    },
                ) => {
                    let op = if other.is_scalar() {
                        OpKind::Elementwise
                    } else {
                        OpKind::ElementwiseFallback
                    };
                    self.push(var, op, transposed, mult);
                }
                _ => {}
            },
        }
    }
}

/// Collects per-variable uses and asks each normalized free variable's
/// planner for a whole-script verdict ([`PlannedMatrix::plan_script`];
/// `None` — the non-cost-based strategies, spent or memoized matrices —
/// contributes no entry).
fn collect_premat(plan: &ScriptPlan, env: &Env) -> Vec<(String, ScriptDecision)> {
    let mut assigned = HashSet::new();
    let mut loops = HashSet::new();
    assigned_vars(&plan.stmts, &mut assigned, &mut loops);
    let shapes = infer_shapes(plan, env, &assigned, &loops);
    let mut sim = UseSim {
        plan,
        shapes: &shapes,
        stamps: vec![0; plan.vars.len()],
        node_stamp: vec![None; plan.nodes.len()],
        clock: 0,
        uses: HashMap::new(),
    };
    sim.walk_stmts(&plan.stmts, 1);
    let mut vars_with_uses: Vec<u32> = sim.uses.keys().copied().collect();
    vars_with_uses.sort_unstable();
    let mut out = Vec::new();
    for v in vars_with_uses {
        let ops = &sim.uses[&v];
        if ops.is_empty() {
            continue;
        }
        let name = &plan.vars[v as usize];
        if let Some(Value::Normalized(p)) = env.get(name) {
            if let Some(decision) = p.plan_script(ops) {
                out.push((name.clone(), decision));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------

/// Hit/miss and fault counters of the process-wide plan cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans served from the cache.
    pub hits: u64,
    /// Plans built from scratch (while the cache was enabled).
    pub misses: u64,
    /// Times a poisoned cache lock was recovered by clearing the cache
    /// (cached plans are recomputed on their next use — a degradation,
    /// never an error). Also counted in
    /// [`morpheus_runtime::faults::stats`] as a lock recovery.
    pub poison_recoveries: u64,
}

struct PlanCache {
    map: Mutex<HashMap<(u64, u64), Arc<ScriptPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl PlanCache {
    fn new() -> Self {
        PlanCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// Locks the plan map, recovering from poisoning by **clearing** the
    /// cache: a thread that died inside the critical section (injectable
    /// via the `plan.cache.lookup`/`plan.cache.insert` failpoints) may
    /// have left a torn insert behind, so the safe recovery is to drop
    /// every entry — plans are pure functions of their key and rebuild on
    /// the next miss. Counted, never propagated.
    fn lock_map(&self) -> std::sync::MutexGuard<'_, HashMap<(u64, u64), Arc<ScriptPlan>>> {
        self.map.lock().unwrap_or_else(|e| {
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            morpheus_runtime::faults::note(morpheus_runtime::faults::Degradation::LockRecovery);
            self.map.clear_poison();
            let mut map = e.into_inner();
            map.clear();
            map
        })
    }

    fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            poison_recoveries: self.poison_recoveries.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.lock_map().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.poison_recoveries.store(0, Ordering::Relaxed);
    }

    fn get_or_insert_with(
        &self,
        key: (u64, u64),
        build: impl FnOnce() -> ScriptPlan,
    ) -> Arc<ScriptPlan> {
        {
            let map = self.lock_map();
            morpheus_runtime::faults::maybe_panic("plan.cache.lookup");
            if let Some(plan) = map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(plan);
            }
        }
        // Built outside the lock: a racing build of the same key is
        // wasted work, never wrong (both plans are identical).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build());
        let mut map = self.lock_map();
        if map.len() >= PLAN_CACHE_CAPACITY {
            map.clear();
        }
        morpheus_runtime::faults::maybe_panic("plan.cache.insert");
        map.insert(key, Arc::clone(&plan));
        plan
    }
}

fn global_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(PlanCache::new)
}

/// Whether the process-wide plan cache is enabled (`MORPHEUS_PLAN_CACHE`,
/// read once; default on).
fn cache_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var(PLAN_CACHE_ENV) {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        ),
        Err(_) => true,
    })
}

/// Hit/miss counters of the process-wide plan cache (both zero while the
/// cache is disabled via [`PLAN_CACHE_ENV`]).
pub fn plan_cache_stats() -> PlanCacheStats {
    global_cache().stats()
}

/// Clears the process-wide plan cache and its counters.
pub fn plan_cache_reset() {
    global_cache().reset();
}

fn strategy_code(s: Strategy) -> u8 {
    match s {
        Strategy::CostBased => 0,
        Strategy::Heuristic(_) => 1,
        Strategy::AlwaysFactorize => 2,
        Strategy::AlwaysMaterialize => 3,
    }
}

fn hash_stmts<H: Hasher>(h: &mut H, stmts: &[PStmt]) {
    // Source lines are deliberately excluded: formatting-only edits reuse
    // the cached plan.
    for s in stmts {
        match s {
            PStmt::Assign { var, node, .. } => {
                0u8.hash(h);
                var.hash(h);
                node.hash(h);
            }
            PStmt::Expr { node, .. } => {
                1u8.hash(h);
                node.hash(h);
            }
            PStmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                2u8.hash(h);
                var.hash(h);
                from.hash(h);
                to.hash(h);
                hash_stmts(h, body);
            }
        }
    }
}

fn hash_signature<H: Hasher>(h: &mut H, plan: &ScriptPlan, env: &Env) {
    for name in &plan.vars {
        match env.get(name) {
            None => 0u8.hash(h),
            Some(Value::Scalar(x)) => {
                1u8.hash(h);
                x.to_bits().hash(h);
            }
            Some(Value::Dense(m)) => {
                2u8.hash(h);
                m.shape().hash(h);
            }
            Some(Value::Normalized(p)) => {
                3u8.hash(h);
                p.shape().hash(h);
                strategy_code(p.strategy()).hash(h);
                p.is_memoized().hash(h);
                match p.normalized() {
                    None => 0u8.hash(h),
                    Some(t) => {
                        1u8.hash(h);
                        t.is_transposed().hash(h);
                        for part in t.parts() {
                            let table = part.table();
                            table.shape().hash(h);
                            table.is_sparse().hash(h);
                            if table.is_sparse() {
                                table.nnz().hash(h);
                            }
                            part.indicator().is_identity().hash(h);
                        }
                    }
                }
            }
        }
    }
}

/// The cache key: two independent 64-bit hashes (so a single-hash
/// collision cannot alias two plans) over the canonicalized structure,
/// the free-variable signatures, and the profile format version.
fn plan_key(plan: &ScriptPlan, env: &Env, profile_version: u32) -> (u64, u64) {
    let mut out = [0u64; 2];
    for (slot, salt) in out
        .iter_mut()
        .zip([0x9e37_79b9_7f4a_7c15u64, 0x6a09_e667_f3bc_c909u64])
    {
        let mut h = DefaultHasher::new();
        h.write_u64(salt);
        for node in &plan.nodes {
            node.kind.hash(&mut h);
        }
        hash_stmts(&mut h, &plan.stmts);
        for name in &plan.vars {
            name.hash(&mut h);
        }
        hash_signature(&mut h, plan, env);
        h.write_u32(profile_version);
        *slot = h.finish();
    }
    (out[0], out[1])
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

fn finish(mut skeleton: ScriptPlan, env: &Env) -> ScriptPlan {
    skeleton.premat = collect_premat(&skeleton, env);
    skeleton
}

/// Plans a program against an environment: optimizes (to fixpoint),
/// hash-conses into a CSE DAG with fused element-wise chains, and reaches
/// whole-script materialize verdicts for normalized free variables.
///
/// Plans are memoized process-wide under a key of (canonicalized program
/// structure, free-variable signatures, profile format version) unless
/// [`PLAN_CACHE_ENV`] disables the cache.
pub fn plan_program(program: &Program, env: &Env) -> Arc<ScriptPlan> {
    let skeleton = lower(&optimize(program));
    if !cache_enabled() {
        return Arc::new(finish(skeleton, env));
    }
    let key = plan_key(&skeleton, env, PROFILE_FORMAT_VERSION);
    global_cache().get_or_insert_with(key, || finish(skeleton, env))
}

/// Evaluates a planned program: applies the up-front materialize
/// verdicts, then runs the statement list with each distinct DAG node
/// computed once per validity epoch (a node is recomputed only after a
/// variable it reads is rebound).
pub fn eval_plan(plan: &ScriptPlan, env: &mut Env) -> Result<Value, LangError> {
    for (name, decision) in &plan.premat {
        if decision.materialize_upfront {
            if let Some(Value::Normalized(p)) = env.get(name) {
                p.prematerialize();
            }
        }
    }
    let mut ctx = EvalCtx {
        memo: vec![None; plan.nodes.len()],
        var_stamp: vec![0; plan.vars.len()],
        clock: 0,
    };
    let mut last = Value::Scalar(0.0);
    for stmt in &plan.stmts {
        last = eval_stmt(plan, &mut ctx, stmt, env)?;
    }
    Ok(last)
}

/// Plans (with caching) and evaluates in one call — the drop-in
/// script-level replacement for [`crate::eval_program`].
pub fn run_program(program: &Program, env: &mut Env) -> Result<Value, LangError> {
    let plan = plan_program(program, env);
    eval_plan(&plan, env)
}

// ---------------------------------------------------------------------
// Plan evaluation (CSE with per-variable generation stamps)
// ---------------------------------------------------------------------

struct EvalCtx {
    /// Per-node `(stamp, value)`: valid while no dependency variable has
    /// been rebound after `stamp`.
    memo: Vec<Option<(u64, Value)>>,
    var_stamp: Vec<u64>,
    clock: u64,
}

impl EvalCtx {
    fn bump(&mut self, var: u32) {
        self.clock += 1;
        self.var_stamp[var as usize] = self.clock;
    }
}

fn eval_stmt(
    plan: &ScriptPlan,
    ctx: &mut EvalCtx,
    stmt: &PStmt,
    env: &mut Env,
) -> Result<Value, LangError> {
    eval_stmt_inner(plan, ctx, stmt, env).map_err(|e| e.at(stmt.line()))
}

fn eval_stmt_inner(
    plan: &ScriptPlan,
    ctx: &mut EvalCtx,
    stmt: &PStmt,
    env: &mut Env,
) -> Result<Value, LangError> {
    match stmt {
        PStmt::Assign { var, node, .. } => {
            let v = eval_node(plan, ctx, env, *node)?;
            env.bind(&plan.vars[*var as usize], v.clone());
            ctx.bump(*var);
            Ok(v)
        }
        PStmt::Expr { node, .. } => eval_node(plan, ctx, env, *node),
        PStmt::For {
            var,
            from,
            to,
            body,
            ..
        } => {
            let lo = expect_scalar(&eval_node(plan, ctx, env, *from)?, "for-range start")?;
            let hi = expect_scalar(&eval_node(plan, ctx, env, *to)?, "for-range end")?;
            let (lo, hi) = (lo.round() as i64, hi.round() as i64);
            let name = &plan.vars[*var as usize];
            let mut last = Value::Scalar(0.0);
            for i in lo..=hi {
                env.bind(name, Value::Scalar(i as f64));
                ctx.bump(*var);
                for s in body {
                    last = eval_stmt(plan, ctx, s, env)?;
                }
            }
            Ok(last)
        }
    }
}

fn eval_node(
    plan: &ScriptPlan,
    ctx: &mut EvalCtx,
    env: &Env,
    id: usize,
) -> Result<Value, LangError> {
    // Leaves bypass the memo: literals are trivial and variable reads
    // must observe the current binding.
    match &plan.nodes[id].kind {
        NodeKind::Number(bits) => return Ok(Value::Scalar(f64::from_bits(*bits))),
        NodeKind::Var(v) => {
            let name = &plan.vars[*v as usize];
            return env
                .get(name)
                .cloned()
                .ok_or_else(|| LangError::Undefined(name.clone()));
        }
        _ => {}
    }
    if let Some((stamp, value)) = &ctx.memo[id] {
        let fresh = plan.nodes[id]
            .deps
            .iter()
            .all(|&d| ctx.var_stamp[d as usize] <= *stamp);
        if fresh {
            return Ok(value.clone());
        }
    }
    let value = match &plan.nodes[id].kind {
        NodeKind::Number(_) | NodeKind::Var(_) => unreachable!("handled above"),
        NodeKind::Bin(op, l, r) => {
            let lv = eval_node(plan, ctx, env, *l)?;
            let rv = eval_node(plan, ctx, env, *r)?;
            eval_bin(*op, lv, rv)?
        }
        NodeKind::Call(f, a) => eval_call(*f, eval_node(plan, ctx, env, *a)?)?,
        NodeKind::Zeros(r, c) => {
            let rows = expect_scalar(&eval_node(plan, ctx, env, *r)?, "zeros rows")? as usize;
            let cols = expect_scalar(&eval_node(plan, ctx, env, *c)?, "zeros cols")? as usize;
            Value::Dense(DenseMatrix::zeros(rows, cols))
        }
        NodeKind::Ones(r, c) => {
            let rows = expect_scalar(&eval_node(plan, ctx, env, *r)?, "ones rows")? as usize;
            let cols = expect_scalar(&eval_node(plan, ctx, env, *c)?, "ones cols")? as usize;
            Value::Dense(DenseMatrix::ones(rows, cols))
        }
        NodeKind::Fused(base, steps) => {
            let base = eval_node(plan, ctx, env, *base)?;
            apply_fused(steps, base)
        }
    };
    ctx.memo[id] = Some((ctx.clock, value.clone()));
    Ok(value)
}

fn apply_fused(steps: &[ScalarStep], base: Value) -> Value {
    match base {
        Value::Scalar(x) => Value::Scalar(steps.iter().fold(x, |acc, s| s.apply_scalar(acc))),
        // Dense: the whole chain in one pass — one allocation instead of
        // one per link, bit-identical per element to the chained kernels.
        Value::Dense(m) => {
            Value::Dense(m.map(|x| steps.iter().fold(x, |acc, s| s.apply_elem(acc))))
        }
        // Normalized: replay link by link through the per-operator
        // planner, so routing decisions match the interpreter exactly.
        Value::Normalized(t) => {
            let out = steps.iter().fold(t, |current, s| s.apply_planned(&current));
            Value::Normalized(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_program;
    use crate::parser::parse;
    use morpheus_core::{Decision, LinearOperand, MachineProfile, NormalizedMatrix};
    use morpheus_sparse::CsrMatrix;
    use std::sync::atomic::AtomicUsize;

    /// Plans without touching the process-wide cache, so tests behave
    /// identically whether `MORPHEUS_PLAN_CACHE` is on or off.
    fn plan_direct(program: &Program, env: &Env) -> ScriptPlan {
        finish(lower(&optimize(program)), env)
    }

    fn run_planned(src: &str, env: &mut Env) -> Result<Value, LangError> {
        let program = parse(src).unwrap();
        let plan = plan_direct(&program, env);
        eval_plan(&plan, env)
    }

    fn run_interp(src: &str, env: &mut Env) -> Result<Value, LangError> {
        eval_program(&parse(src).unwrap(), env)
    }

    /// A deterministic PK-FK normalized matrix (`n_s x (d_s + d_r)`).
    fn pkfk(n_s: usize, d_s: usize, n_r: usize, d_r: usize) -> NormalizedMatrix {
        let mut seed = 0x2545f491u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / ((1u64 << 31) as f64) - 0.5
        };
        let s = DenseMatrix::from_fn(n_s, d_s, |_, _| next());
        let r = DenseMatrix::from_fn(n_r, d_r, |_, _| next());
        let fk: Vec<usize> = (0..n_s).map(|i| (i * 7 + 3) % n_r).collect();
        NormalizedMatrix::pk_fk(s.into(), &fk, r.into())
    }

    /// Counts planner decisions for one operator kind via the hook.
    fn counting(
        t: NormalizedMatrix,
        strategy: Strategy,
        count_op: fn(&OpKind) -> bool,
    ) -> (PlannedMatrix, Arc<AtomicUsize>) {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let p = PlannedMatrix::with_strategy(t, strategy)
            .with_profile(MachineProfile::REFERENCE)
            .with_hook(move |d: &Decision| {
                if count_op(&d.op) {
                    n2.fetch_add(1, Ordering::Relaxed);
                }
            });
        (p, n)
    }

    fn bits(v: &Value) -> Vec<u64> {
        match v {
            Value::Scalar(x) => vec![x.to_bits()],
            Value::Dense(m) => m.as_slice().iter().map(|x| x.to_bits()).collect(),
            Value::Normalized(p) => p
                .materialize()
                .to_dense()
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect(),
        }
    }

    #[test]
    fn fusion_collapses_scalar_chains() {
        let program = parse("sum((T ^ 2) / 3 - 0.5)").unwrap();
        let plan = lower(&optimize(&program));
        let chains: Vec<usize> = plan
            .nodes
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Fused(_, steps) => Some(steps.len()),
                _ => None,
            })
            .collect();
        assert_eq!(chains, vec![3], "expected one fused chain of 3 links");
        assert_eq!(plan.fused_chain_count(), 1);
    }

    #[test]
    fn single_ops_also_fuse_and_stay_exact() {
        // `-x` lowers to a one-link chain: MulC(-1), the interpreter's
        // own desugaring.
        let program = parse("-(X + 0)").unwrap();
        let plan = lower(&optimize(&program));
        assert!(plan
            .nodes
            .iter()
            .any(|n| matches!(&n.kind, NodeKind::Fused(_, s) if s.len() == 1)));
    }

    #[test]
    fn planned_eval_matches_interpreter_bitwise_on_dense() {
        let src =
            "a = exp(X / 7 - 0.25)\nb = 2 ^ a\nc = -b + sigma\nsum(log(c * c + 1.5)) - sum(a)";
        let x = DenseMatrix::from_fn(8, 5, |i, j| (i as f64 - 2.0) * 0.3 + j as f64 * 0.7);
        let mk = || {
            let mut env = Env::new();
            env.bind("X", Value::Dense(x.clone()));
            env.bind("sigma", Value::Scalar(1.75));
            env
        };
        let vi = run_interp(src, &mut mk()).unwrap();
        let vp = run_planned(src, &mut mk()).unwrap();
        assert_eq!(bits(&vi), bits(&vp));
    }

    #[test]
    fn fused_chain_replays_bitwise_on_normalized() {
        let src = "sum(exp(2 * T + 1) / 3)";
        let t = pkfk(24, 3, 6, 4);
        let mk = |t: NormalizedMatrix| {
            let mut env = Env::new();
            env.bind(
                "T",
                Value::Normalized(
                    PlannedMatrix::with_strategy(t, Strategy::AlwaysFactorize)
                        .with_profile(MachineProfile::REFERENCE),
                ),
            );
            env
        };
        let vi = run_interp(src, &mut mk(t.clone())).unwrap();
        let vp = run_planned(src, &mut mk(t)).unwrap();
        assert_eq!(bits(&vi), bits(&vp));
    }

    #[test]
    fn for_loop_parity_bitwise() {
        let src = "w = zeros(4, 1)\nfor (i in 1:3) {\n  p = Y / (1 + exp(Y * (X %*% w)))\n  w = w + 0.01 * (t(X) %*% p)\n}\nw";
        let x = DenseMatrix::from_fn(6, 4, |i, j| ((i * 5 + j * 3) % 7) as f64 * 0.2 - 0.5);
        let y = DenseMatrix::from_fn(6, 1, |i, _| if i % 2 == 0 { 1.0 } else { -1.0 });
        let mk = || {
            let mut env = Env::new();
            env.bind("X", Value::Dense(x.clone()));
            env.bind("Y", Value::Dense(y.clone()));
            env
        };
        let vi = run_interp(src, &mut mk()).unwrap();
        let vp = run_planned(src, &mut mk()).unwrap();
        assert_eq!(bits(&vi), bits(&vp));
    }

    #[test]
    fn cse_evaluates_shared_subexpressions_once() {
        let src = "a = sum(crossprod(T))\nb = sum(crossprod(T))\na + b";
        let t = pkfk(32, 2, 8, 3);
        let is_cp = |op: &OpKind| matches!(op, OpKind::Crossprod);

        let (p, n_interp) = counting(t.clone(), Strategy::AlwaysFactorize, is_cp);
        let mut env = Env::new();
        env.bind("T", Value::Normalized(p));
        let vi = run_interp(src, &mut env).unwrap();

        let (p, n_planned) = counting(t, Strategy::AlwaysFactorize, is_cp);
        let mut env = Env::new();
        env.bind("T", Value::Normalized(p));
        let vp = run_planned(src, &mut env).unwrap();

        assert_eq!(n_interp.load(Ordering::Relaxed), 2);
        assert_eq!(n_planned.load(Ordering::Relaxed), 1);
        assert_eq!(bits(&vi), bits(&vp));
    }

    #[test]
    fn loop_invariant_expressions_hoist() {
        let src = "s = 0\nfor (i in 1:5) { s = s + sum(crossprod(T)) }\ns";
        let t = pkfk(32, 2, 8, 3);
        let is_cp = |op: &OpKind| matches!(op, OpKind::Crossprod);

        let (p, n_interp) = counting(t.clone(), Strategy::AlwaysFactorize, is_cp);
        let mut env = Env::new();
        env.bind("T", Value::Normalized(p));
        let vi = run_interp(src, &mut env).unwrap();

        let (p, n_planned) = counting(t, Strategy::AlwaysFactorize, is_cp);
        let mut env = Env::new();
        env.bind("T", Value::Normalized(p));
        let vp = run_planned(src, &mut env).unwrap();

        assert_eq!(n_interp.load(Ordering::Relaxed), 5);
        assert_eq!(n_planned.load(Ordering::Relaxed), 1);
        assert_eq!(bits(&vi), bits(&vp));
    }

    #[test]
    fn premat_verdict_collected_and_results_preserved() {
        // Loop body varies with `i`, so every trip re-runs the chain: 12
        // element-wise passes and 12 rowMins against a wide, heavily
        // reused T. The whole-script planner must reach *a* verdict
        // (either way — it is shape- and profile-dependent); evaluation
        // must agree with the interpreter regardless.
        let src = "s = 0\nfor (i in 1:12) { s = s + sum(rowMin(T * i)) }\ns";
        let t = pkfk(64, 2, 64, 32);
        let mk = |t: NormalizedMatrix| {
            let mut env = Env::new();
            env.bind(
                "T",
                Value::Normalized(
                    PlannedMatrix::with_strategy(t, Strategy::CostBased)
                        .with_profile(MachineProfile::REFERENCE),
                ),
            );
            env
        };

        let program = parse(src).unwrap();
        let env = mk(t.clone());
        let plan = plan_direct(&program, &env);
        assert_eq!(
            plan.premat_decisions().len(),
            1,
            "expected a whole-script verdict for T"
        );
        assert_eq!(plan.premat_decisions()[0].0, "T");
        let d = &plan.premat_decisions()[0].1;
        assert!(d.greedy_ns.is_finite() && d.lookahead_ns.is_finite());

        let mut env = mk(t.clone());
        let vp = eval_plan(&plan, &mut env).unwrap();
        let vi = run_interp(src, &mut mk(t)).unwrap();
        let (a, b) = (vi.as_scalar().unwrap(), vp.as_scalar().unwrap());
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
            "planned {b} vs interpreter {a}"
        );
    }

    #[test]
    fn planned_eval_preserves_error_lines() {
        let mut env = Env::new();
        let err = run_planned("x = 1\nz = nope + 1\nz", &mut env).unwrap_err();
        match err {
            LangError::At { line, inner } => {
                assert_eq!(line, 2);
                assert_eq!(*inner, LangError::Undefined("nope".into()));
            }
            other => panic!("expected line-annotated error, got {other}"),
        }
    }

    #[test]
    fn plan_cache_hits_and_keying() {
        let cache = PlanCache::new();
        let src = "sum(t(T) %*% (T %*% w))";
        let program = parse(src).unwrap();
        let skeleton = lower(&optimize(&program));

        let env_for = |t: NormalizedMatrix, w_cols: usize| {
            let mut env = Env::new();
            env.bind(
                "T",
                Value::Normalized(
                    PlannedMatrix::with_strategy(t, Strategy::CostBased)
                        .with_profile(MachineProfile::REFERENCE),
                ),
            );
            env.bind("w", Value::Dense(DenseMatrix::ones(5, w_cols)));
            env
        };

        let env1 = env_for(pkfk(16, 2, 4, 3), 1);
        let k1 = plan_key(&skeleton, &env1, PROFILE_FORMAT_VERSION);
        cache.get_or_insert_with(k1, || finish(skeleton.clone(), &env1));
        cache.get_or_insert_with(k1, || panic!("must hit"));
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 1,
                misses: 1,
                poison_recoveries: 0
            }
        );

        // Same script, different base-table shape: different key.
        let env2 = env_for(pkfk(16, 2, 4, 4), 1);
        let k2 = plan_key(&skeleton, &env2, PROFILE_FORMAT_VERSION);
        assert_ne!(k1, k2);

        // Different dense-operand shape: different key.
        let env3 = env_for(pkfk(16, 2, 4, 3), 2);
        let k3 = plan_key(&skeleton, &env3, PROFILE_FORMAT_VERSION);
        assert_ne!(k1, k3);

        // Profile format version bump: different key.
        let k4 = plan_key(&skeleton, &env1, PROFILE_FORMAT_VERSION + 1);
        assert_ne!(k1, k4);

        // A different program structure: different key.
        let skeleton2 = lower(&optimize(&parse("sum(t(T) %*% (T %*% w)) + 1").unwrap()));
        let k5 = plan_key(&skeleton2, &env1, PROFILE_FORMAT_VERSION);
        assert_ne!(k1, k5);
    }

    #[test]
    fn plan_key_sees_sparse_nnz() {
        let src = "sum(rowSums(T))";
        let skeleton = lower(&optimize(&parse(src).unwrap()));
        let sparse_s = |nnz_rows: usize| {
            let d = DenseMatrix::from_fn(8, 4, |i, j| {
                if i < nnz_rows {
                    (i + j + 1) as f64
                } else {
                    0.0
                }
            });
            let s = CsrMatrix::from_dense(&d);
            let r = DenseMatrix::ones(2, 3);
            let fk: Vec<usize> = (0..8).map(|i| i % 2).collect();
            NormalizedMatrix::pk_fk(s.into(), &fk, r.into())
        };
        let env_for = |t: NormalizedMatrix| {
            let mut env = Env::new();
            env.bind(
                "T",
                Value::Normalized(
                    PlannedMatrix::with_strategy(t, Strategy::CostBased)
                        .with_profile(MachineProfile::REFERENCE),
                ),
            );
            env
        };
        // Same shapes everywhere; only the S table's nnz differs.
        let k_a = plan_key(&skeleton, &env_for(sparse_s(2)), PROFILE_FORMAT_VERSION);
        let k_b = plan_key(&skeleton, &env_for(sparse_s(6)), PROFILE_FORMAT_VERSION);
        assert_ne!(k_a, k_b);
    }

    #[test]
    fn plan_cache_capacity_clears_wholesale() {
        let cache = PlanCache::new();
        let plan_of = |src: &str| lower(&optimize(&parse(src).unwrap()));
        for i in 0..PLAN_CACHE_CAPACITY + 1 {
            cache.get_or_insert_with((i as u64, 0), || plan_of("1 + 1"));
        }
        // The insert that crossed capacity cleared the map first.
        assert!(cache.map.lock().unwrap().len() <= PLAN_CACHE_CAPACITY);
        assert_eq!(cache.stats().misses, (PLAN_CACHE_CAPACITY + 1) as u64);
    }

    #[test]
    fn poisoned_cache_recovers_by_clearing() {
        use morpheus_runtime::faults;
        let _guard = faults::exclusive();
        let cache = PlanCache::new();
        let plan_of = |src: &str| lower(&optimize(&parse(src).unwrap()));
        cache.get_or_insert_with((1, 1), || plan_of("1 + 1"));
        assert_eq!(cache.stats().hits + cache.stats().misses, 1);
        // Kill a thread inside the cache's critical section: the mutex is
        // now poisoned.
        faults::configure("plan.cache.lookup=panic(times=1)").unwrap();
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_insert_with((2, 2), || plan_of("2 + 2"))
        }));
        faults::clear();
        assert!(died.is_err(), "injected lookup panic must propagate");
        assert!(cache.map.is_poisoned());
        // The next access recovers by clearing — no propagated poison,
        // the counter ticks, and the cache works again (a miss, since
        // recovery dropped the entries).
        let recoveries_before = cache.stats().poison_recoveries;
        cache.get_or_insert_with((1, 1), || plan_of("1 + 1"));
        assert_eq!(cache.stats().poison_recoveries, recoveries_before + 1);
        assert!(!cache.map.is_poisoned());
        cache.get_or_insert_with((1, 1), || panic!("must hit after recovery"));
    }

    #[test]
    fn global_cache_round_trip_when_enabled() {
        if !cache_enabled() {
            return; // CI runs a MORPHEUS_PLAN_CACHE=off mode.
        }
        plan_cache_reset();
        let program = parse("x = 41\nx + 1").unwrap();
        // Fresh env per run: evaluation binds `x`, and a changed binding
        // is a changed cache key by design.
        let v1 = run_program(&program, &mut Env::new()).unwrap();
        let s1 = plan_cache_stats();
        let v2 = run_program(&program, &mut Env::new()).unwrap();
        let s2 = plan_cache_stats();
        assert_eq!(v1.as_scalar(), Some(42.0));
        assert_eq!(v2.as_scalar(), Some(42.0));
        assert_eq!(s2.misses, s1.misses);
        assert_eq!(s2.hits, s1.hits + 1);
    }
}
