//! Evaluator: runs a parsed script against an environment of scalars,
//! regular matrices, and normalized matrices.
//!
//! The dispatch table in [`eval_bin`] *is* the paper's operator
//! overloading: when an operand is a [`Value::Normalized`], the call is
//! routed through the per-operator planner
//! ([`morpheus_core::PlannedMatrix`]) — each operator runs factorized or
//! materialized according to the process-wide `MORPHEUS_STRATEGY`
//! (cost-based by default); element-wise ops between a normalized and a
//! regular matrix fall back to materialization (the non-factorizable
//! case, §3.3.7); everything else runs on the dense kernels.

use crate::ast::{BinOp, Expr, Program, Stmt, UnaryFn};
use crate::token::LangError;
use morpheus_core::{LinearOperand, Matrix, PlannedMatrix};
use morpheus_dense::DenseMatrix;
use std::collections::HashMap;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// A scalar.
    Scalar(f64),
    /// A regular dense matrix.
    Dense(DenseMatrix),
    /// A normalized matrix behind the per-operator planner.
    Normalized(PlannedMatrix),
}

impl Value {
    /// Wraps a normalized (or already planned) matrix as a script value;
    /// the planner applies the process-wide strategy to every operator the
    /// script touches it with.
    pub fn normalized(t: impl Into<PlannedMatrix>) -> Value {
        Value::Normalized(t.into())
    }

    /// The value as a scalar, if it is one (1x1 matrices coerce).
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Value::Scalar(v) => Some(*v),
            Value::Dense(m) if m.shape() == (1, 1) => Some(m.get(0, 0)),
            _ => None,
        }
    }

    /// The value as a dense matrix, if it is one.
    pub fn as_dense(&self) -> Option<&DenseMatrix> {
        match self {
            Value::Dense(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a planned normalized matrix, if it is one.
    pub fn as_normalized(&self) -> Option<&PlannedMatrix> {
        match self {
            Value::Normalized(t) => Some(t),
            _ => None,
        }
    }

    /// `(rows, cols)` of matrix values; `(1, 1)` for scalars.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            Value::Scalar(_) => (1, 1),
            Value::Dense(m) => m.shape(),
            Value::Normalized(t) => t.shape(),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Scalar(_) => "scalar",
            Value::Dense(_) => "matrix",
            Value::Normalized(_) => "normalized matrix",
        }
    }
}

/// Variable bindings for script evaluation.
#[derive(Debug, Clone, Default)]
pub struct Env {
    vars: HashMap<String, Value>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds (or rebinds) a name.
    pub fn bind(&mut self, name: &str, value: Value) {
        self.vars.insert(name.to_string(), value);
    }

    /// Looks a name up.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }
}

/// Evaluates a whole program, returning the value of its last statement.
pub fn eval_program(program: &Program, env: &mut Env) -> Result<Value, LangError> {
    let mut last = Value::Scalar(0.0);
    for stmt in &program.stmts {
        last = eval_stmt(stmt, env)?;
    }
    Ok(last)
}

fn eval_stmt(stmt: &Stmt, env: &mut Env) -> Result<Value, LangError> {
    // Runtime errors surface with the statement's source line; nested
    // statements (loop bodies) already annotated theirs, so the innermost
    // span wins.
    eval_stmt_inner(stmt, env).map_err(|e| e.at(stmt.line()))
}

fn eval_stmt_inner(stmt: &Stmt, env: &mut Env) -> Result<Value, LangError> {
    match stmt {
        Stmt::Assign { name, expr, .. } => {
            let v = eval_expr(expr, env)?;
            env.bind(name, v.clone());
            Ok(v)
        }
        Stmt::Expr { expr, .. } => eval_expr(expr, env),
        Stmt::For {
            var,
            from,
            to,
            body,
            ..
        } => {
            let lo = expect_scalar(&eval_expr(from, env)?, "for-range start")?;
            let hi = expect_scalar(&eval_expr(to, env)?, "for-range end")?;
            let (lo, hi) = (lo.round() as i64, hi.round() as i64);
            let mut last = Value::Scalar(0.0);
            for i in lo..=hi {
                env.bind(var, Value::Scalar(i as f64));
                for s in body {
                    last = eval_stmt(s, env)?;
                }
            }
            Ok(last)
        }
    }
}

pub(crate) fn expect_scalar(v: &Value, what: &str) -> Result<f64, LangError> {
    v.as_scalar()
        .ok_or_else(|| LangError::Type(format!("{what} must be a scalar, got {}", v.kind())))
}

/// Evaluates a single expression.
pub fn eval_expr(expr: &Expr, env: &mut Env) -> Result<Value, LangError> {
    match expr {
        Expr::Number(v) => Ok(Value::Scalar(*v)),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| LangError::Undefined(name.clone())),
        Expr::Neg(inner) => {
            let v = eval_expr(inner, env)?;
            eval_bin(BinOp::Mul, Value::Scalar(-1.0), v)
        }
        Expr::Bin(op, lhs, rhs) => {
            let l = eval_expr(lhs, env)?;
            let r = eval_expr(rhs, env)?;
            eval_bin(*op, l, r)
        }
        Expr::Call(f, arg) => {
            let v = eval_expr(arg, env)?;
            eval_call(*f, v)
        }
        Expr::Zeros(r, c) => {
            let rows = expect_scalar(&eval_expr(r, env)?, "zeros rows")? as usize;
            let cols = expect_scalar(&eval_expr(c, env)?, "zeros cols")? as usize;
            Ok(Value::Dense(DenseMatrix::zeros(rows, cols)))
        }
        Expr::Ones(r, c) => {
            let rows = expect_scalar(&eval_expr(r, env)?, "ones rows")? as usize;
            let cols = expect_scalar(&eval_expr(c, env)?, "ones cols")? as usize;
            Ok(Value::Dense(DenseMatrix::ones(rows, cols)))
        }
    }
}

fn shape_err(op: &str, a: (usize, usize), b: (usize, usize)) -> LangError {
    LangError::Shape(format!("{op}: {}x{} vs {}x{}", a.0, a.1, b.0, b.1))
}

pub(crate) fn eval_bin(op: BinOp, l: Value, r: Value) -> Result<Value, LangError> {
    use BinOp::*;
    use Value::*;
    match (op, l, r) {
        // ---- scalar ⊘ scalar -------------------------------------------
        (Add, Scalar(a), Scalar(b)) => Ok(Scalar(a + b)),
        (Sub, Scalar(a), Scalar(b)) => Ok(Scalar(a - b)),
        (Mul, Scalar(a), Scalar(b)) => Ok(Scalar(a * b)),
        (Div, Scalar(a), Scalar(b)) => Ok(Scalar(a / b)),
        (Pow, Scalar(a), Scalar(b)) => Ok(Scalar(a.powf(b))),
        (MatMul, Scalar(a), Scalar(b)) => Ok(Scalar(a * b)),
        (Eq, Scalar(a), Scalar(b)) => Ok(Scalar(if a == b { 1.0 } else { 0.0 })),

        // `==` with exactly one scalar operand compares element-wise
        // against the scalar, like R's recycling.
        (Eq, Dense(m), Scalar(x)) | (Eq, Scalar(x), Dense(m)) => {
            Ok(Dense(m.map(move |v| if v == x { 1.0 } else { 0.0 })))
        }
        (Eq, Normalized(t), Scalar(x)) | (Eq, Scalar(x), Normalized(t)) => {
            Ok(Dense(t.materialize().to_dense().map(move |v| {
                if v == x {
                    1.0
                } else {
                    0.0
                }
            })))
        }

        // `%*%` with one scalar operand behaves like R's scalar recycling:
        // treat it as element-wise scaling.
        (MatMul, Scalar(x), other) => eval_bin(Mul, Scalar(x), other),
        (MatMul, other, Scalar(x)) => eval_bin(Mul, other, Scalar(x)),

        // ---- normalized ⊘ scalar: the §3.3.1 rewrites -------------------
        (Add, Normalized(t), Scalar(x)) | (Add, Scalar(x), Normalized(t)) => {
            Ok(Normalized(t.scalar_add(x)))
        }
        (Sub, Normalized(t), Scalar(x)) => Ok(Normalized(t.scalar_sub(x))),
        (Sub, Scalar(x), Normalized(t)) => Ok(Normalized(t.scalar_rsub(x))),
        (Mul, Normalized(t), Scalar(x)) | (Mul, Scalar(x), Normalized(t)) => {
            Ok(Normalized(t.scalar_mul(x)))
        }
        (Div, Normalized(t), Scalar(x)) => Ok(Normalized(t.scalar_div(x))),
        (Div, Scalar(x), Normalized(t)) => Ok(Normalized(t.scalar_rdiv(x))),
        (Pow, Normalized(t), Scalar(x)) => Ok(Normalized(t.scalar_pow(x))),
        (Pow, Scalar(x), Normalized(t)) => Ok(Normalized(t.map(move |v| x.powf(v)))),

        // ---- dense ⊘ scalar ---------------------------------------------
        (Add, Dense(m), Scalar(x)) | (Add, Scalar(x), Dense(m)) => Ok(Dense(m.scalar_add(x))),
        (Sub, Dense(m), Scalar(x)) => Ok(Dense(m.scalar_sub(x))),
        (Sub, Scalar(x), Dense(m)) => Ok(Dense(m.scalar_rsub(x))),
        (Mul, Dense(m), Scalar(x)) | (Mul, Scalar(x), Dense(m)) => Ok(Dense(m.scalar_mul(x))),
        (Div, Dense(m), Scalar(x)) => Ok(Dense(m.scalar_div(x))),
        (Div, Scalar(x), Dense(m)) => Ok(Dense(m.scalar_rdiv(x))),
        (Pow, Dense(m), Scalar(x)) => Ok(Dense(m.scalar_pow(x))),
        (Pow, Scalar(x), Dense(m)) => Ok(Dense(m.map(move |v| x.powf(v)))),

        // ---- matrix multiplication: LMM / RMM / DMM rewrites ------------
        (MatMul, Normalized(t), Dense(x)) => {
            if t.cols() != x.rows() {
                return Err(shape_err("%*%", t.shape(), x.shape()));
            }
            Ok(Dense(t.lmm(&x)))
        }
        (MatMul, Dense(x), Normalized(t)) => {
            if x.cols() != t.rows() {
                return Err(shape_err("%*%", x.shape(), t.shape()));
            }
            Ok(Dense(t.rmm(&x)))
        }
        (MatMul, Normalized(a), Normalized(b)) => {
            if a.cols() != b.rows() {
                return Err(shape_err("%*%", a.shape(), b.shape()));
            }
            Ok(Dense(a.dmm(&b).to_dense()))
        }
        (MatMul, Dense(a), Dense(b)) => {
            if a.cols() != b.rows() {
                return Err(shape_err("%*%", a.shape(), b.shape()));
            }
            Ok(Dense(a.matmul(&b)))
        }

        // ---- element-wise matrix ⊘ matrix -------------------------------
        (op, Dense(a), Dense(b)) => {
            if a.shape() != b.shape() {
                return Err(shape_err(op_name(op), a.shape(), b.shape()));
            }
            Ok(Dense(match op {
                Add => a.add(&b),
                Sub => a.sub(&b),
                Mul => a.mul_elem(&b),
                Div => a.div_elem(&b),
                Pow => elementwise_pow(&a, &b),
                // Exact comparison, as in R: the K-Means assignment
                // `D == rowMin(D) %*% ones(1, k)` relies on bitwise-equal
                // copies of the minimum.
                Eq => a.eq_indicator(&b, 0.0),
                MatMul => unreachable!("handled above"),
            }))
        }

        // ---- non-factorizable: normalized ⊘ matrix (§3.3.7) -------------
        (op, Normalized(t), Dense(b)) => {
            if t.shape() != b.shape() {
                return Err(shape_err(op_name(op), t.shape(), b.shape()));
            }
            let bm = Matrix::Dense(b);
            let out = match op {
                Add => t.add_matrix(&bm),
                Sub => t.sub_matrix(&bm),
                Mul => t.mul_elem_matrix(&bm),
                Div => t.div_elem_matrix(&bm),
                Pow => {
                    let a = t.materialize().to_dense();
                    Matrix::Dense(elementwise_pow(&a, bm.as_dense().expect("dense rhs")))
                }
                Eq => {
                    let a = t.materialize().to_dense();
                    Matrix::Dense(a.eq_indicator(bm.as_dense().expect("dense rhs"), 0.0))
                }
                MatMul => unreachable!("handled above"),
            };
            Ok(Dense(out.to_dense()))
        }
        (op, Dense(a), Normalized(t)) => {
            if a.shape() != t.shape() {
                return Err(shape_err(op_name(op), a.shape(), t.shape()));
            }
            let tm = t.materialize().to_dense();
            eval_bin(op, Dense(a), Dense(tm))
        }
        (op, Normalized(a), Normalized(b)) => {
            if a.shape() != b.shape() {
                return Err(shape_err(op_name(op), a.shape(), b.shape()));
            }
            let bm = b.materialize().to_dense();
            eval_bin(op, Normalized(a), Dense(bm))
        }
    }
}

fn elementwise_pow(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let mut out = a.clone();
    for (v, &e) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *v = v.powf(e);
    }
    out
}

fn op_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Pow => "^",
        BinOp::MatMul => "%*%",
        BinOp::Eq => "==",
    }
}

pub(crate) fn eval_call(f: UnaryFn, v: Value) -> Result<Value, LangError> {
    use UnaryFn::*;
    Ok(match (f, v) {
        // Scalar fast paths.
        (Exp, Value::Scalar(x)) => Value::Scalar(x.exp()),
        (Log, Value::Scalar(x)) => Value::Scalar(x.ln()),
        (Sigmoid, Value::Scalar(x)) => Value::Scalar(1.0 / (1.0 + (-x).exp())),
        (Sum, Value::Scalar(x)) => Value::Scalar(x),
        (Transpose, Value::Scalar(x)) => Value::Scalar(x),
        (f, Value::Scalar(_)) => {
            return Err(LangError::Type(format!(
                "{}() expects a matrix argument",
                f.name()
            )))
        }

        // Normalized: every call routes through a rewrite.
        (Transpose, Value::Normalized(t)) => Value::Normalized(t.transpose()),
        (Exp, Value::Normalized(t)) => Value::Normalized(t.exp()),
        (Log, Value::Normalized(t)) => Value::Normalized(t.ln()),
        (Sigmoid, Value::Normalized(t)) => Value::Normalized(t.map(|x| 1.0 / (1.0 + (-x).exp()))),
        (RowSums, Value::Normalized(t)) => Value::Dense(t.row_sums()),
        (RowMin, Value::Normalized(t)) => Value::Dense(t.row_min()),
        (ColSums, Value::Normalized(t)) => Value::Dense(t.col_sums()),
        (Sum, Value::Normalized(t)) => Value::Scalar(t.sum()),
        (Crossprod, Value::Normalized(t)) => Value::Dense(t.crossprod()),
        (TCrossprod, Value::Normalized(t)) => Value::Dense(t.tcrossprod()),
        (Ginv, Value::Normalized(t)) => Value::Dense(t.ginv()),
        (Materialize, Value::Normalized(t)) => Value::Dense(t.materialize().to_dense()),

        // Dense.
        (Transpose, Value::Dense(m)) => Value::Dense(m.transpose()),
        (Exp, Value::Dense(m)) => Value::Dense(m.exp()),
        (Log, Value::Dense(m)) => Value::Dense(m.ln()),
        (Sigmoid, Value::Dense(m)) => Value::Dense(m.sigmoid()),
        (RowSums, Value::Dense(m)) => Value::Dense(m.row_sums()),
        (RowMin, Value::Dense(m)) => Value::Dense(m.row_min()),
        (ColSums, Value::Dense(m)) => Value::Dense(m.col_sums()),
        (Sum, Value::Dense(m)) => Value::Scalar(m.sum()),
        (Crossprod, Value::Dense(m)) => Value::Dense(m.crossprod()),
        (TCrossprod, Value::Dense(m)) => Value::Dense(m.tcrossprod()),
        (Ginv, Value::Dense(m)) => Value::Dense(LinearOperand::ginv(&Matrix::Dense(m))),
        (Materialize, Value::Dense(m)) => Value::Dense(m),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};
    use morpheus_core::NormalizedMatrix;

    fn fixture() -> (NormalizedMatrix, DenseMatrix) {
        // Full-column-rank join output (6x5) so pseudo-inverse routes agree.
        let s = DenseMatrix::from_fn(6, 2, |i, j| ((i * i + 2 * j + 1) % 7) as f64 - 1.0);
        let r = DenseMatrix::from_fn(3, 3, |i, j| ((i * 3 + j * j) % 5) as f64 * 0.5 + 0.1);
        let tn = NormalizedMatrix::pk_fk(s.into(), &[0, 1, 2, 0, 1, 2], r.into());
        let td = tn.materialize().to_dense();
        (tn, td)
    }

    fn eval_with_t(src: &str, t: Value) -> Value {
        let program = parse(src).unwrap();
        let mut env = Env::new();
        env.bind("T", t);
        eval_program(&program, &mut env).unwrap()
    }

    #[test]
    fn scalar_arithmetic() {
        let mut env = Env::new();
        let e = parse_expr("2 + 3 * 4 ^ 2").unwrap();
        let v = eval_expr(&e, &mut env).unwrap();
        assert_eq!(v.as_scalar(), Some(50.0));
    }

    #[test]
    fn undefined_variable_reported() {
        let mut env = Env::new();
        let e = parse_expr("nope + 1").unwrap();
        assert!(matches!(
            eval_expr(&e, &mut env),
            Err(LangError::Undefined(ref n)) if n == "nope"
        ));
    }

    #[test]
    fn every_operator_matches_between_backends() {
        let (tn, td) = fixture();
        for src in [
            "sum(T)",
            "sum(rowSums(T))",
            "sum(colSums(T))",
            "sum(crossprod(T))",
            "sum(tcrossprod(T))",
            "sum(t(T))",
            "sum(exp(T / 10))",
            "sum(2 * T + 1)",
            "sum((T ^ 2) / 3 - 0.5)",
            "sum(sigmoid(T))",
            "sum(ginv(T))",
            "sum(t(T) %*% T)",
        ] {
            let f = eval_with_t(src, Value::normalized(tn.clone()))
                .as_scalar()
                .unwrap();
            let m = eval_with_t(src, Value::Dense(td.clone()))
                .as_scalar()
                .unwrap();
            assert!(
                (f - m).abs() <= 1e-6 * m.abs().max(1.0),
                "script '{src}' diverged: {f} vs {m}"
            );
        }
    }

    #[test]
    fn normalized_scalar_ops_stay_normalized() {
        let (tn, _) = fixture();
        let v = eval_with_t("exp(2 * T + 1)", Value::normalized(tn));
        assert!(matches!(v, Value::Normalized(_)), "closure lost");
    }

    #[test]
    fn matmul_shape_errors() {
        let (tn, _) = fixture();
        let program = parse("T %*% T").unwrap();
        let mut env = Env::new();
        env.bind("T", Value::normalized(tn));
        let err = eval_program(&program, &mut env).unwrap_err();
        assert!(matches!(err.root(), LangError::Shape(_)));
    }

    #[test]
    fn runtime_errors_carry_statement_lines() {
        let program = parse("x = 1\ny = x\nz = nope + 1").unwrap();
        let mut env = Env::new();
        let err = eval_program(&program, &mut env).unwrap_err();
        assert!(matches!(err, LangError::At { line: 3, .. }), "{err:?}");
        assert!(matches!(err.root(), LangError::Undefined(n) if n == "nope"));
        assert_eq!(err.to_string(), "line 3: undefined variable 'nope'");
        // Inside a loop body, the innermost statement's line wins.
        let program = parse("for (i in 1:2) {\n  q = missing\n}").unwrap();
        let err = eval_program(&program, &mut Env::new()).unwrap_err();
        assert!(matches!(err, LangError::At { line: 2, .. }), "{err:?}");
    }

    #[test]
    fn elementwise_with_regular_matrix_materializes() {
        let (tn, td) = fixture();
        let mut env = Env::new();
        env.bind("T", Value::normalized(tn));
        env.bind("X", Value::Dense(td.clone()));
        let v = eval_program(&parse("T + X").unwrap(), &mut env).unwrap();
        let expected = td.scalar_mul(2.0);
        assert!(v.as_dense().unwrap().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn for_loop_accumulates() {
        let mut env = Env::new();
        env.bind("x", Value::Scalar(0.0));
        let v = eval_program(&parse("for (i in 1:5) { x = x + i }\nx").unwrap(), &mut env).unwrap();
        assert_eq!(v.as_scalar(), Some(15.0));
    }

    #[test]
    fn figure1_logistic_regression_script_factorizes() {
        let (tn, td) = fixture();
        let y = DenseMatrix::from_fn(6, 1, |i, _| if i % 2 == 0 { 1.0 } else { -1.0 });
        let script = r#"
            w = zeros(5, 1)
            for (i in 1:10) {
                w = w + a * (t(T) %*% (Y / (1 + exp(Y * (T %*% w)))))
            }
            w
        "#;
        let program = parse(script).unwrap();

        let mut env_f = Env::new();
        env_f.bind("T", Value::normalized(tn.clone()));
        env_f.bind("Y", Value::Dense(y.clone()));
        env_f.bind("a", Value::Scalar(0.05));
        let wf = eval_program(&program, &mut env_f).unwrap();

        let mut env_m = Env::new();
        env_m.bind("T", Value::Dense(td));
        env_m.bind("Y", Value::Dense(y.clone()));
        env_m.bind("a", Value::Scalar(0.05));
        let wm = eval_program(&program, &mut env_m).unwrap();

        assert!(wf
            .as_dense()
            .unwrap()
            .approx_eq(wm.as_dense().unwrap(), 1e-9));

        // And both match the native Rust implementation.
        let native = morpheus_ml::logreg::LogisticRegressionGd::new(0.05, 10)
            .fit(&tn, &y)
            .w;
        assert!(wf.as_dense().unwrap().approx_eq(&native, 1e-9));
    }

    #[test]
    fn linear_regression_script_matches_native() {
        let (tn, _) = fixture();
        let y = DenseMatrix::from_fn(6, 1, |i, _| i as f64 * 0.3 - 1.0);
        let script = "ginv(crossprod(T)) %*% (t(T) %*% Y)";
        let program = parse(script).unwrap();
        let mut env = Env::new();
        env.bind("T", Value::normalized(tn.clone()));
        env.bind("Y", Value::Dense(y.clone()));
        let w = eval_program(&program, &mut env).unwrap();
        let native = morpheus_ml::linreg::LinearRegressionNe::new().fit(&tn, &y);
        assert!(w.as_dense().unwrap().approx_eq(&native, 1e-6));
    }

    #[test]
    fn dmm_through_script() {
        let (tn, td) = fixture();
        // T has 5 columns; build B = 5x? normalized for t(T) %*% ... skip —
        // exercise A %*% B with conformable normalized pair instead.
        let sb = DenseMatrix::from_fn(5, 1, |i, _| i as f64 * 0.2);
        let rb = DenseMatrix::from_fn(2, 2, |i, j| (i + j) as f64 + 0.5);
        let b = NormalizedMatrix::pk_fk(sb.into(), &[0, 1, 0, 1, 0], rb.into());
        let bd = b.materialize().to_dense();
        let mut env = Env::new();
        env.bind("A", Value::normalized(tn));
        env.bind("B", Value::normalized(b));
        let v = eval_program(&parse("A %*% B").unwrap(), &mut env).unwrap();
        assert!(v.as_dense().unwrap().approx_eq(&td.matmul(&bd), 1e-9));
    }
}
