//! Property-based validation of the shared parallel runtime: for random
//! shapes and worker counts, the band-parallel dense/sparse kernels must
//! agree with the single-threaded path **bit for bit** (each output
//! element is accumulated by exactly one worker in the serial order), the
//! two-pass scatter kernels (`t_spmm_dense`, `dense_spmm`, `spgemm`,
//! `t_spgemm_dense`) must reproduce the serial results — for SpGEMM the
//! exact CSR structure — and chunk-level parallelism composed over
//! kernel-level parallelism (oversubscription) must stay deterministic.
//! Worker counts deliberately exceed the resident pool so dispatch under
//! oversubscription is exercised too. The SIMD determinism contract gets
//! the same treatment: the AVX2 GEMM microkernel must match the scalar
//! FMA microkernel bit for bit on every tile-remainder shape, and the
//! fixed-lane reductions must not move with the worker count or the
//! `MORPHEUS_SIMD` gate.

use morpheus::chunked::ChunkedMatrix;
use morpheus::core::LinearOperand;
use morpheus::dense::simd::{self, GemmBand, GemmIsa, MatSrc};
use morpheus::prelude::*;
use proptest::prelude::*;

fn mat(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut state = seed | 1;
    DenseMatrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn sparse(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
    let nnz = (rows * cols / 3).max(1);
    let mut state = seed | 1;
    let trips: Vec<(usize, usize, f64)> = (0..nnz)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (state >> 33) as usize % rows;
            let j = (state >> 13) as usize % cols;
            let v = ((state >> 3) % 19) as f64 - 9.0;
            (i, j, v)
        })
        .collect();
    CsrMatrix::from_triplets(rows, cols, &trips).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_dense_kernels_bit_identical(
        rows in 1usize..60,
        cols in 1usize..12,
        inner in 1usize..12,
        threads in 2usize..6,
        seed in any::<u64>(),
    ) {
        let a = mat(rows, inner, seed);
        let b = mat(inner, cols, seed ^ 0xA5A5);
        let v = mat(inner, 1, seed ^ 0x77).into_vec();
        let w = mat(rows, 1, seed ^ 0x99).into_vec();
        let serial = Executor::serial();
        let par = Executor::new(threads);
        // Bit-for-bit: exact equality, not approx_eq.
        prop_assert_eq!(a.matmul_with(&b, &par), a.matmul_with(&b, &serial));
        prop_assert_eq!(a.matvec_with(&v, &par), a.matvec_with(&v, &serial));
        prop_assert_eq!(a.vecmat_with(&w, &par), a.vecmat_with(&w, &serial));
        prop_assert_eq!(a.crossprod_with(&par), a.crossprod_with(&serial));
        prop_assert_eq!(a.tcrossprod_with(&par), a.tcrossprod_with(&serial));
        let y = mat(rows, cols, seed ^ 0x1234);
        prop_assert_eq!(a.t_matmul_with(&y, &par), a.t_matmul_with(&y, &serial));
        let z = mat(cols, inner, seed ^ 0x4321);
        prop_assert_eq!(a.matmul_t_with(&z, &par), a.matmul_t_with(&z, &serial));
    }

    #[test]
    fn parallel_sparse_kernels_bit_identical(
        rows in 1usize..50,
        cols in 1usize..15,
        width in 1usize..8,
        threads in 2usize..6,
        seed in any::<u64>(),
    ) {
        let s = sparse(rows, cols, seed);
        let x = mat(cols, width, seed ^ 0xBEEF);
        let xv = mat(cols, 1, seed ^ 0xFACE).into_vec();
        let serial = Executor::serial();
        let par = Executor::new(threads);
        prop_assert_eq!(s.spmm_dense_with(&x, &par), s.spmm_dense_with(&x, &serial));
        prop_assert_eq!(s.spmv_with(&xv, &par), s.spmv_with(&xv, &serial));
        prop_assert_eq!(s.crossprod_dense_with(&par), s.crossprod_dense_with(&serial));
    }

    #[test]
    fn parallel_scatter_kernels_bit_identical(
        rows in 1usize..50,
        cols in 1usize..15,
        width in 1usize..8,
        threads in 2usize..10,
        seed in any::<u64>(),
    ) {
        // The scatter kernels run their two-pass symbolic/numeric scheme
        // only above the work threshold; drop it so these small shapes
        // exercise the parallel paths (scheduling only — results are
        // threshold-independent).
        Runtime::set_par_threshold(1);
        let s = sparse(rows, cols, seed);
        let y = mat(rows, width, seed ^ 0x0FF1);
        let yv = mat(rows, 1, seed ^ 0x2CE);
        let xd = mat(width, rows, seed ^ 0xC0DE);
        let b = sparse(cols, (seed % 13) as usize + 1, seed ^ 0x1DEA);
        let b2 = sparse(rows, width + 2, seed ^ 0xF00D);
        let serial = Executor::serial();
        let par = Executor::new(threads);
        prop_assert_eq!(
            s.t_spmm_dense_with(&y, &par),
            s.t_spmm_dense_with(&y, &serial)
        );
        prop_assert_eq!(
            s.t_spmm_dense_with(&yv, &par),
            s.t_spmm_dense_with(&yv, &serial)
        );
        prop_assert_eq!(
            s.dense_spmm_with(&xd, &par),
            s.dense_spmm_with(&xd, &serial)
        );
        // SpGEMM: the full CSR structure must match, not just the dense
        // content — exact per-row extents include cancellation drops.
        let sp_par = s.spgemm_with(&b, &par);
        let sp_serial = s.spgemm_with(&b, &serial);
        prop_assert_eq!(sp_par.indptr(), sp_serial.indptr());
        prop_assert_eq!(sp_par.indices(), sp_serial.indices());
        prop_assert_eq!(sp_par.values(), sp_serial.values());
        prop_assert_eq!(
            s.t_spgemm_dense_with(&b2, &par),
            s.t_spgemm_dense_with(&b2, &serial)
        );
    }

    #[test]
    fn oversubscribed_scatter_kernels_are_deterministic(
        rows in 4usize..40,
        cols in 2usize..10,
        outer in 2usize..5,
        seed in any::<u64>(),
    ) {
        // Scatter kernels nested inside an outer parallel section: the
        // outer map claims workers (oversubscribing the pool), the plain
        // kernel methods inside see the remaining budget — every replica
        // must still equal the fully serial result bit-for-bit. The
        // configured worker count is restored afterwards so the CI
        // thread-mode pins (1 / default / 8) keep governing the rest of
        // this binary.
        Runtime::set_par_threshold(1);
        let configured = Runtime::threads();
        Runtime::set_threads(4);
        let s = sparse(rows, cols, seed);
        let y = mat(rows, 3, seed ^ 0xAB);
        let b = sparse(cols, 5, seed ^ 0xCD);
        let t_expect = s.t_spmm_dense_with(&y, &Executor::serial());
        let sp_expect = s.spgemm_with(&b, &Executor::serial());
        let replicas = Executor::new(outer).map(outer, |_| (s.t_spmm_dense(&y), s.spgemm(&b)));
        Runtime::set_threads(configured);
        for (t, sp) in replicas {
            prop_assert_eq!(&t, &t_expect);
            prop_assert_eq!(sp.indptr(), sp_expect.indptr());
            prop_assert_eq!(sp.indices(), sp_expect.indices());
            prop_assert_eq!(sp.values(), sp_expect.values());
        }
    }

    #[test]
    fn oversubscribed_chunked_over_parallel_dense_is_deterministic(
        rows in 8usize..50,
        cols in 2usize..8,
        chunk in 1usize..12,
        outer_threads in 2usize..5,
        seed in any::<u64>(),
    ) {
        // Chunk-level parallelism claims workers; the parallel dense
        // kernels inside each chunk see the remainder of the global
        // budget. Whatever the split, results must be identical to the
        // fully serial execution. The configured count is restored so the
        // CI thread-mode pins keep governing the rest of this binary.
        let configured = Runtime::threads();
        Runtime::set_threads(4);
        let d = mat(rows, cols, seed);
        let m = Matrix::Dense(d.clone());
        // The raw-executor path: this property *is* about pinning distinct
        // chunk-level worker counts, which the Runtime default deliberately
        // hides (Runtime::set_threads is global and racy across tests).
        #[allow(deprecated)]
        let nested = ChunkedMatrix::from_matrix(&m, chunk, Executor::new(outer_threads));
        #[allow(deprecated)]
        let serial = ChunkedMatrix::from_matrix(&m, chunk, Executor::new(1));

        let x = mat(cols, 3, seed ^ 0x5E5E);
        let nested_lmm = nested.lmm(&x);
        let nested_cp = LinearOperand::crossprod(&nested);
        let nested_lmm2 = nested.lmm(&x);
        let nested_cp2 = LinearOperand::crossprod(&nested);
        let serial_lmm = serial.lmm(&x);
        let serial_cp = LinearOperand::crossprod(&serial);
        Runtime::set_threads(configured);
        prop_assert_eq!(&nested_lmm, &serial_lmm);
        prop_assert_eq!(&nested_cp, &serial_cp);
        // Repeated runs are stable too (no scheduling-dependent results).
        prop_assert_eq!(nested_lmm2, nested_lmm);
        prop_assert_eq!(nested_cp2, nested_cp);
    }

    #[test]
    fn simd_gemm_bit_identical_to_scalar_microkernel(
        m in 1usize..35,
        k in 1usize..300,
        n in 1usize..30,
        seed in any::<u64>(),
    ) {
        // The vector microkernel's determinism contract: for every shape —
        // including MR/NR tile remainders and products crossing a KC
        // boundary — the AVX2 kernel produces the same bits as the scalar
        // FMA microkernel over the same packed panels, and both agree
        // with a naive triple loop to rounding. Exercised through the
        // explicit-ISA band API, so no process-global dispatch state is
        // touched and cases can run concurrently.
        let a = mat(m, k, seed);
        let b = mat(k, n, seed ^ 0x51D);
        let asrc = MatSrc { data: a.as_slice(), rs: k, cs: 1 };
        let packed = simd::pack_b(MatSrc { data: b.as_slice(), rs: n, cs: 1 }, k, n);
        let band = GemmBand { a: asrc, b: &packed, i0: 0, tri_upper: false };
        let mut scalar = vec![0.0f64; m * n];
        band.run(GemmIsa::ScalarFma, &mut scalar);
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            let mut vector = vec![0.0f64; m * n];
            band.run(GemmIsa::Avx2Fma, &mut vector);
            prop_assert_eq!(&vector, &scalar);
        }
        let mut portable = vec![0.0f64; m * n];
        band.run(GemmIsa::Portable, &mut portable);
        for i in 0..m {
            for j in 0..n {
                let mut naive = 0.0f64;
                for kk in 0..k {
                    naive += a.get(i, kk) * b.get(kk, j);
                }
                let tol = 1e-12 * (k as f64).max(1.0);
                prop_assert!((scalar[i * n + j] - naive).abs() <= tol);
                prop_assert!((portable[i * n + j] - naive).abs() <= tol);
            }
        }
    }

    #[test]
    fn gemm_drivers_bit_identical_with_simd_disabled(
        rows in 1usize..40,
        cols in 1usize..10,
        inner in 1usize..14,
        seed in any::<u64>(),
    ) {
        // `MORPHEUS_SIMD=off` demotes dispatch from the AVX2 kernel to the
        // scalar FMA microkernel — which the determinism contract requires
        // to be bit-identical, so flipping the gate must be invisible in
        // every product driver's output. (That same contract is what makes
        // this toggle safe while sibling cases run concurrently.)
        let a = mat(rows, inner, seed);
        let b = mat(inner, cols, seed ^ 0xE11E);
        let y = mat(rows, cols, seed ^ 0x31A7);
        let z = mat(cols, inner, seed ^ 0x7A13);
        let on = (
            a.matmul(&b),
            a.crossprod(),
            a.tcrossprod(),
            a.t_matmul(&y),
            a.matmul_t(&z),
        );
        let was_enabled = Runtime::simd_enabled();
        Runtime::set_simd(false);
        let off = (
            a.matmul(&b),
            a.crossprod(),
            a.tcrossprod(),
            a.t_matmul(&y),
            a.matmul_t(&z),
        );
        Runtime::set_simd(was_enabled);
        prop_assert_eq!(off, on);
    }

    #[test]
    fn reductions_bit_identical_across_thread_counts_and_simd_modes(
        rows in 1usize..40,
        cols in 1usize..20,
        seed in any::<u64>(),
    ) {
        // The fixed-lane reductions promise one accumulation order per
        // input length: results must not move with the worker count
        // (CI pins 1 / default / 8) or with the `MORPHEUS_SIMD` gate, and
        // must agree with a plain sequential fold to rounding.
        let d = mat(rows, cols, seed);
        let s = sparse(rows, cols.max(2), seed ^ 0x5EED);
        let reduce = |d: &DenseMatrix, s: &CsrMatrix| {
            (
                d.sum(),
                d.row_sums(),
                d.row_min(),
                d.row_max(),
                d.frobenius_norm(),
                s.sum(),
                s.row_sums(),
                s.frobenius_norm(),
            )
        };
        let base = reduce(&d, &s);
        let configured = Runtime::threads();
        for t in [1usize, 8] {
            Runtime::set_threads(t);
            let got = reduce(&d, &s);
            Runtime::set_threads(configured);
            prop_assert_eq!(&got, &base);
        }
        let was_enabled = Runtime::simd_enabled();
        Runtime::set_simd(false);
        let gated = reduce(&d, &s);
        Runtime::set_simd(was_enabled);
        prop_assert_eq!(&gated, &base);
        // Tolerance agreement with the naive sequential folds.
        let naive_sum: f64 = d.as_slice().iter().sum();
        let naive_sq: f64 = d.as_slice().iter().map(|v| v * v).sum();
        let tol = 1e-12 * (rows * cols) as f64;
        prop_assert!((base.0 - naive_sum).abs() <= tol);
        prop_assert!((base.4 - naive_sq.sqrt()).abs() <= tol);
        for i in 0..rows {
            let row = &d.as_slice()[i * cols..(i + 1) * cols];
            let min = row.iter().copied().fold(f64::INFINITY, f64::min);
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(base.2.get(i, 0), min);
            prop_assert_eq!(base.3.get(i, 0), max);
        }
    }

    #[test]
    fn one_thread_executor_reproduces_default_results(
        rows in 1usize..40,
        cols in 1usize..8,
        seed in any::<u64>(),
    ) {
        // The plain methods (Runtime-sized) must compute the same bits as
        // an explicit 1-thread executor — parallelism is pure scheduling.
        let a = mat(rows, cols, seed);
        let b = mat(cols, rows, seed ^ 0xD00D);
        let serial = Executor::serial();
        prop_assert_eq!(a.matmul(&b), a.matmul_with(&b, &serial));
        prop_assert_eq!(a.crossprod(), a.crossprod_with(&serial));
    }
}

/// With no failpoints configured, a healthy parallel run must leave every
/// fault and degradation counter at zero — the fault machinery is free
/// and silent on the happy path. Skipped when `MORPHEUS_FAILPOINTS` is
/// set (the CI chaos pass injects faults into this very binary, and the
/// counters then *should* tick).
#[test]
fn unfaulted_runs_leave_every_fault_counter_at_zero() {
    use morpheus::runtime::faults;
    if std::env::var_os(faults::FAILPOINTS_ENV).is_some() {
        return;
    }
    let a = mat(48, 16, 0xFEED);
    let b = mat(16, 48, 0xBEEF);
    let configured = Runtime::threads();
    Runtime::set_threads(4);
    let product = a.matmul(&b);
    let cp = a.crossprod();
    Runtime::set_threads(configured);
    assert_eq!(product, a.matmul_with(&b, &Executor::serial()));
    assert_eq!(cp, a.crossprod_with(&Executor::serial()));
    let stats = faults::stats();
    assert_eq!(
        stats,
        faults::FaultStats::default(),
        "no fault counter may tick without an injected fault: {stats:?}"
    );
}
