//! Property-based validation of the shared parallel runtime: for random
//! shapes and worker counts, the band-parallel dense/sparse kernels must
//! agree with the single-threaded path **bit for bit** (each output
//! element is accumulated by exactly one worker in the serial order), and
//! chunk-level parallelism composed over kernel-level parallelism
//! (oversubscription) must stay deterministic.

use morpheus::chunked::ChunkedMatrix;
use morpheus::core::LinearOperand;
use morpheus::prelude::*;
use proptest::prelude::*;

fn mat(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut state = seed | 1;
    DenseMatrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn sparse(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
    let nnz = (rows * cols / 3).max(1);
    let mut state = seed | 1;
    let trips: Vec<(usize, usize, f64)> = (0..nnz)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (state >> 33) as usize % rows;
            let j = (state >> 13) as usize % cols;
            let v = ((state >> 3) % 19) as f64 - 9.0;
            (i, j, v)
        })
        .collect();
    CsrMatrix::from_triplets(rows, cols, &trips).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_dense_kernels_bit_identical(
        rows in 1usize..60,
        cols in 1usize..12,
        inner in 1usize..12,
        threads in 2usize..6,
        seed in any::<u64>(),
    ) {
        let a = mat(rows, inner, seed);
        let b = mat(inner, cols, seed ^ 0xA5A5);
        let v = mat(inner, 1, seed ^ 0x77).into_vec();
        let w = mat(rows, 1, seed ^ 0x99).into_vec();
        let serial = Executor::serial();
        let par = Executor::new(threads);
        // Bit-for-bit: exact equality, not approx_eq.
        prop_assert_eq!(a.matmul_with(&b, &par), a.matmul_with(&b, &serial));
        prop_assert_eq!(a.matvec_with(&v, &par), a.matvec_with(&v, &serial));
        prop_assert_eq!(a.vecmat_with(&w, &par), a.vecmat_with(&w, &serial));
        prop_assert_eq!(a.crossprod_with(&par), a.crossprod_with(&serial));
        prop_assert_eq!(a.tcrossprod_with(&par), a.tcrossprod_with(&serial));
        let y = mat(rows, cols, seed ^ 0x1234);
        prop_assert_eq!(a.t_matmul_with(&y, &par), a.t_matmul_with(&y, &serial));
        let z = mat(cols, inner, seed ^ 0x4321);
        prop_assert_eq!(a.matmul_t_with(&z, &par), a.matmul_t_with(&z, &serial));
    }

    #[test]
    fn parallel_sparse_kernels_bit_identical(
        rows in 1usize..50,
        cols in 1usize..15,
        width in 1usize..8,
        threads in 2usize..6,
        seed in any::<u64>(),
    ) {
        let s = sparse(rows, cols, seed);
        let x = mat(cols, width, seed ^ 0xBEEF);
        let xv = mat(cols, 1, seed ^ 0xFACE).into_vec();
        let serial = Executor::serial();
        let par = Executor::new(threads);
        prop_assert_eq!(s.spmm_dense_with(&x, &par), s.spmm_dense_with(&x, &serial));
        prop_assert_eq!(s.spmv_with(&xv, &par), s.spmv_with(&xv, &serial));
        prop_assert_eq!(s.crossprod_dense_with(&par), s.crossprod_dense_with(&serial));
    }

    #[test]
    fn oversubscribed_chunked_over_parallel_dense_is_deterministic(
        rows in 8usize..50,
        cols in 2usize..8,
        chunk in 1usize..12,
        outer_threads in 2usize..5,
        seed in any::<u64>(),
    ) {
        // Chunk-level parallelism claims workers; the parallel dense
        // kernels inside each chunk see the remainder of the global
        // budget. Whatever the split, results must be identical to the
        // fully serial execution.
        Runtime::set_threads(4);
        let d = mat(rows, cols, seed);
        let m = Matrix::Dense(d.clone());
        let nested = ChunkedMatrix::from_matrix(&m, chunk, Executor::new(outer_threads));
        let serial = ChunkedMatrix::from_matrix(&m, chunk, Executor::new(1));

        let x = mat(cols, 3, seed ^ 0x5E5E);
        prop_assert_eq!(nested.lmm(&x), serial.lmm(&x));
        prop_assert_eq!(
            LinearOperand::crossprod(&nested),
            LinearOperand::crossprod(&serial)
        );
        // Repeated runs are stable too (no scheduling-dependent results).
        prop_assert_eq!(nested.lmm(&x), nested.lmm(&x));
        prop_assert_eq!(
            LinearOperand::crossprod(&nested),
            LinearOperand::crossprod(&nested)
        );
    }

    #[test]
    fn one_thread_executor_reproduces_default_results(
        rows in 1usize..40,
        cols in 1usize..8,
        seed in any::<u64>(),
    ) {
        // The plain methods (Runtime-sized) must compute the same bits as
        // an explicit 1-thread executor — parallelism is pure scheduling.
        let a = mat(rows, cols, seed);
        let b = mat(cols, rows, seed ^ 0xD00D);
        let serial = Executor::serial();
        prop_assert_eq!(a.matmul(&b), a.matmul_with(&b, &serial));
        prop_assert_eq!(a.crossprod(), a.crossprod_with(&serial));
    }
}
