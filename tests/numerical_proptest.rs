//! Property-based validation of the numerical substrate: factorizations
//! must reconstruct their inputs and solvers must produce true solutions,
//! over randomized well- and ill-conditioned matrices.

use morpheus::dense::DenseMatrix;
use morpheus::linalg::{
    cholesky, eigen_sym, ginv, ginv_sym_psd, householder_qr, lstsq, lu_decompose, solve, solve_spd,
    svd,
};
use proptest::prelude::*;

/// Deterministic matrix from a seed; entries in [-1, 1].
fn mat(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut state = seed | 1;
    DenseMatrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn lu_solves_square_systems(n in 1usize..8, seed in any::<u64>()) {
        // Diagonally dominant ⇒ non-singular.
        let mut a = mat(n, n, seed);
        for i in 0..n {
            let v = a.get(i, i) + n as f64 + 1.0;
            a.set(i, i, v);
        }
        let x_true = mat(n, 1, seed ^ 0xABCD);
        let b = a.matmul(&x_true);
        let x = solve(&a, &b).expect("dominant matrix is non-singular");
        prop_assert!(x.approx_eq(&x_true, 1e-7));
        // Determinant is consistent with invertibility.
        let lu = lu_decompose(&a).unwrap();
        prop_assert!(lu.det().abs() > 0.0);
    }

    #[test]
    fn cholesky_reconstructs_spd(n in 1usize..8, seed in any::<u64>()) {
        let b = mat(n + 2, n, seed);
        let mut a = b.crossprod();
        a.add_assign(&DenseMatrix::identity(n)); // strictly PD
        let l = cholesky(&a).expect("PD by construction");
        prop_assert!(l.matmul(&l.transpose()).approx_eq(&a, 1e-8));
        // And the SPD solver agrees with LU.
        let rhs = mat(n, 1, seed ^ 0x1111);
        let x1 = solve_spd(&a, &rhs).unwrap();
        let x2 = solve(&a, &rhs).unwrap();
        prop_assert!(x1.approx_eq(&x2, 1e-6));
    }

    #[test]
    fn qr_reconstructs_and_solves_least_squares(
        m in 3usize..10,
        n in 1usize..4,
        seed in any::<u64>(),
    ) {
        prop_assume!(m >= n);
        let a = mat(m, n, seed);
        let qr = householder_qr(&a).unwrap();
        prop_assert!(qr.q.matmul(&qr.r).approx_eq(&a, 1e-8));
        prop_assert!(qr
            .q
            .crossprod()
            .approx_eq(&DenseMatrix::identity(n), 1e-8));
        // Least squares via QR matches the normal equations when the Gram
        // matrix is well-conditioned.
        let mut gram = a.crossprod();
        gram.add_assign(&DenseMatrix::identity(n).scalar_mul(1e-9));
        let b = mat(m, 1, seed ^ 0x2222);
        if let (Ok(x_qr), Ok(x_ne)) = (lstsq(&a, &b), solve(&gram, &a.t_matmul(&b))) {
            prop_assert!(x_qr.approx_eq(&x_ne, 1e-4));
        }
    }

    #[test]
    fn svd_reconstructs_any_matrix(
        m in 1usize..9,
        n in 1usize..9,
        seed in any::<u64>(),
    ) {
        let a = mat(m, n, seed);
        let s = svd(&a).unwrap();
        prop_assert!(s.reconstruct().approx_eq(&a, 1e-8));
        for w in s.singular.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert!(s.singular.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn eigen_reconstructs_symmetric(n in 1usize..8, seed in any::<u64>()) {
        let b = mat(n + 1, n, seed);
        let a = b.crossprod(); // symmetric PSD
        let e = eigen_sym(&a).unwrap();
        let rec = e
            .vectors
            .scale_cols(&e.values)
            .matmul_t(&e.vectors);
        prop_assert!(rec.approx_eq(&a, 1e-7));
        prop_assert!(e.values.iter().all(|&l| l > -1e-8));
    }

    #[test]
    fn ginv_moore_penrose_on_random_and_rank_deficient(
        m in 1usize..7,
        n in 1usize..7,
        seed in any::<u64>(),
        duplicate_col in any::<bool>(),
    ) {
        let mut a = mat(m, n, seed);
        if duplicate_col && n >= 2 {
            // Force rank deficiency: copy column 0 into column n-1.
            for i in 0..m {
                let v = a.get(i, 0);
                a.set(i, n - 1, v);
            }
        }
        let p = ginv(&a);
        prop_assert_eq!(p.shape(), (n, m));
        prop_assert!(a.matmul(&p).matmul(&a).approx_eq(&a, 1e-6), "APA != A");
        prop_assert!(p.matmul(&a).matmul(&p).approx_eq(&p, 1e-6), "PAP != P");
        let ap = a.matmul(&p);
        prop_assert!(ap.transpose().approx_eq(&ap, 1e-6));
    }

    #[test]
    fn ginv_routes_agree_on_gram_matrices(n in 1usize..6, m in 1usize..8, seed in any::<u64>()) {
        let a = mat(m.max(n), n, seed);
        let g = a.crossprod();
        let via_eig = ginv_sym_psd(&g);
        let via_svd = ginv(&g);
        // Both are the Moore–Penrose inverse; rank-deficient cases may
        // differ near the cutoff, so compare through the defining property.
        prop_assert!(g.matmul(&via_eig).matmul(&g).approx_eq(&g, 1e-6));
        prop_assert!(g.matmul(&via_svd).matmul(&g).approx_eq(&g, 1e-6));
    }

    #[test]
    fn dense_algebra_laws(m in 1usize..7, k in 1usize..7, n in 1usize..7, seed in any::<u64>()) {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed ^ 0x3333);
        // (AB)ᵀ = Bᵀ Aᵀ.
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
        // crossprod(A) = Aᵀ A.
        prop_assert!(a.crossprod().approx_eq(&a.transpose().matmul(&a), 1e-10));
        // rowSums/colSums/sum consistency.
        prop_assert!((a.row_sums().sum() - a.sum()).abs() < 1e-9 * a.sum().abs().max(1.0));
        prop_assert!((a.col_sums().sum() - a.sum()).abs() < 1e-9 * a.sum().abs().max(1.0));
    }

    #[test]
    fn sparse_dense_kernels_agree(rows in 1usize..10, cols in 1usize..10, seed in any::<u64>()) {
        use morpheus::sparse::CsrMatrix;
        // Random ~30%-dense sparse matrix.
        let mut state = seed | 1;
        let dense = DenseMatrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            if v.abs() < 0.7 { 0.0 } else { v }
        });
        let sp = CsrMatrix::from_dense(&dense);
        prop_assert_eq!(sp.to_dense(), dense.clone());
        let x = mat(cols, 2, seed ^ 0x4444);
        prop_assert!(sp.spmm_dense(&x).approx_eq(&dense.matmul(&x), 1e-10));
        let y = mat(rows, 2, seed ^ 0x5555);
        prop_assert!(sp
            .t_spmm_dense(&y)
            .approx_eq(&dense.t_matmul(&y), 1e-10));
        prop_assert!(sp.crossprod_dense().approx_eq(&dense.crossprod(), 1e-10));
        prop_assert_eq!(sp.transpose().to_dense(), dense.transpose());
        prop_assert!(sp.row_sums().approx_eq(&dense.row_sums(), 1e-12));
        prop_assert!(sp.col_sums().approx_eq(&dense.col_sums(), 1e-12));
    }
}
