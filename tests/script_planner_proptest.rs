//! Property-based equivalence suite for the script planner: for randomly
//! generated normalized matrices and a corpus of scripts exercising CSE,
//! element-wise fusion, loops, and whole-script verdicts, the planned
//! evaluator ([`morpheus::lang::run_program`]) must agree with the plain
//! interpreter ([`morpheus::lang::eval_program`]).
//!
//! The agreement contract is strategy-dependent, by design:
//!
//! * **AlwaysFactorize / AlwaysMaterialize / Heuristic** — *bitwise*
//!   identity. These strategies route every operator by value kind and
//!   shape alone, and the planner replays fused chains on normalized
//!   values through the identical per-operator calls, so no summation
//!   order can differ.
//! * **CostBased** — tight approximate identity. Cost-based routing is
//!   schedule-dependent: evaluating a shared subexpression once instead
//!   of twice (or pre-materializing on a whole-script verdict) can
//!   legally flip a later greedy per-operator decision, and the two
//!   routes sum in different orders. Each route is bitwise-pure; which
//!   route is taken is not part of the numerical contract.
//!
//! Both contracts are checked at 1 and 8 worker threads: within a case
//! the two evaluators run under the *same* thread count (a process-global
//! lock keeps concurrent cases from changing it mid-comparison).

use morpheus::core::{DecisionRule, MachineProfile, Strategy as Route};
use morpheus::lang::{eval_program, parse, run_program, Env, Value};
use morpheus::prelude::{DenseMatrix, NormalizedMatrix, PlannedMatrix, Runtime};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes cases that set the process-global worker count, so a
/// bitwise comparison never straddles two thread configurations.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic data for one case: a PK-FK normalized matrix plus a
/// conformable label vector.
#[derive(Debug, Clone)]
struct Case {
    tn: NormalizedMatrix,
    y: DenseMatrix,
}

fn arb_case() -> impl proptest::Strategy<Value = Case> {
    (2usize..16, 1usize..4, 1usize..6, 1usize..5, any::<u64>()).prop_map(
        |(n_s, d_s, n_r, d_r, seed)| {
            let mut state = seed;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let s = DenseMatrix::from_fn(n_s, d_s, |_, _| next());
            let r = DenseMatrix::from_fn(n_r, d_r, |_, _| next());
            let fk: Vec<usize> = (0..n_s)
                .map(|i| {
                    let v = (next().abs() * n_r as f64) as usize;
                    (i + v) % n_r
                })
                .collect();
            let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
            let y = DenseMatrix::from_fn(n_s, 1, |i, _| if i % 2 == 0 { 1.0 } else { -1.0 });
            Case { tn, y }
        },
    )
}

/// The script corpus: each entry exercises a planner feature. `{d}` is
/// substituted with the normalized matrix's column count.
const SCRIPTS: &[&str] = &[
    // Shared subexpressions (CSE) over factorized aggregations.
    "g = sum(crossprod(T))\nh = sum(crossprod(T))\ng + h + sum(rowSums(T))",
    // Element-wise fusion on a normalized operand, consumed by sums.
    "a = sum(exp(2 * T + 1) / 3)\nb = sum((T ^ 2) * 0.5 - 1)\na + b",
    // Loop-invariant hoisting plus a loop-variant chain.
    "s = 0\nfor (i in 1:4) {\n  s = s + sum(T * i) + sum(colSums(T))\n}\ns",
    // The paper's logistic-regression loop shape.
    "w = zeros({d}, 1)\nfor (i in 1:3) {\n  p = Y / (1 + exp(Y * (T %*% w)))\n  w = w + 0.1 * (t(T) %*% p)\n}\nsum(w)",
    // Transposed uses mixed with fused negation.
    "u = sum(t(T) %*% (-Y + 2))\nv = sum(t(T) %*% (-Y + 2))\nu - v / 2",
];

fn script_for(case: &Case, template: &str) -> String {
    template.replace("{d}", &case.tn.cols().to_string())
}

fn env_for(case: &Case, route: Route) -> Env {
    let mut env = Env::new();
    env.bind(
        "T",
        Value::Normalized(
            PlannedMatrix::with_strategy(case.tn.clone(), route)
                .with_profile(MachineProfile::REFERENCE),
        ),
    );
    env.bind("Y", Value::Dense(case.y.clone()));
    env
}

fn value_bits(v: &Value) -> Vec<u64> {
    match v {
        Value::Scalar(x) => vec![x.to_bits()],
        Value::Dense(m) => m.as_slice().iter().map(|x| x.to_bits()).collect(),
        Value::Normalized(_) => panic!("corpus scripts end in scalar/dense results"),
    }
}

fn value_f64s(v: &Value) -> Vec<f64> {
    match v {
        Value::Scalar(x) => vec![*x],
        Value::Dense(m) => m.as_slice().to_vec(),
        Value::Normalized(_) => panic!("corpus scripts end in scalar/dense results"),
    }
}

/// Runs interpreter and planner on the same script/case/route under a
/// fixed thread count and returns both results.
fn run_both(case: &Case, template: &str, route: Route, threads: usize) -> (Value, Value) {
    let src = script_for(case, template);
    let program = parse(&src).unwrap();
    let _guard = THREADS_LOCK.lock().unwrap();
    let before = Runtime::threads();
    Runtime::set_threads(threads);
    let vi = eval_program(&program, &mut env_for(case, route));
    let vp = run_program(&program, &mut env_for(case, route));
    Runtime::set_threads(before);
    (vi.unwrap(), vp.unwrap())
}

fn assert_bitwise(case: &Case, template: &str, route: Route, threads: usize) {
    let (vi, vp) = run_both(case, template, route, threads);
    assert_eq!(
        value_bits(&vi),
        value_bits(&vp),
        "bitwise divergence: route {route:?}, {threads} threads, script:\n{}",
        script_for(case, template)
    );
}

fn assert_close(case: &Case, template: &str, route: Route, threads: usize) {
    let (vi, vp) = run_both(case, template, route, threads);
    let (a, b) = (value_f64s(&vi), value_f64s(&vp));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        let tol = 1e-9 * x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() <= tol,
            "divergence beyond tolerance: {x} vs {y}, route {route:?}, {threads} threads, script:\n{}",
            script_for(case, template)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn deterministic_routes_are_bitwise_identical(case in arb_case(), script_idx in 0usize..SCRIPTS.len()) {
        let template = SCRIPTS[script_idx];
        for route in [
            Route::AlwaysFactorize,
            Route::AlwaysMaterialize,
            Route::Heuristic(DecisionRule::default()),
        ] {
            for threads in [1usize, 8] {
                assert_bitwise(&case, template, route, threads);
            }
        }
    }

    #[test]
    fn cost_based_route_agrees_within_tolerance(case in arb_case(), script_idx in 0usize..SCRIPTS.len()) {
        let template = SCRIPTS[script_idx];
        for threads in [1usize, 8] {
            assert_close(&case, template, Route::CostBased, threads);
        }
    }

    #[test]
    fn dense_only_scripts_are_bitwise_identical_at_any_thread_count(case in arb_case(), script_idx in 0usize..SCRIPTS.len()) {
        // With T bound to the materialized join output the planner's CSE
        // and fusion run on pure dense kernels: bitwise identity holds on
        // every strategy-independent path.
        let template = SCRIPTS[script_idx];
        let src = script_for(&case, template);
        let program = parse(&src).unwrap();
        let t = case.tn.materialize().to_dense();
        let mk = || {
            let mut env = Env::new();
            env.bind("T", Value::Dense(t.clone()));
            env.bind("Y", Value::Dense(case.y.clone()));
            env
        };
        for threads in [1usize, 8] {
            let _guard = THREADS_LOCK.lock().unwrap();
            let before = Runtime::threads();
            Runtime::set_threads(threads);
            let vi = eval_program(&program, &mut mk());
            let vp = run_program(&program, &mut mk());
            Runtime::set_threads(before);
            prop_assert_eq!(value_bits(&vi.unwrap()), value_bits(&vp.unwrap()));
        }
    }
}
