//! Integration tests over the simulated real datasets (Table 6): sparse
//! multi-table star schemas, zero-feature entity tables, and the full ML
//! pipeline the Table 7 experiment runs.

use morpheus::data::realsim;
use morpheus::ml::gnmf::Gnmf;
use morpheus::ml::kmeans::KMeans;
use morpheus::ml::linreg::LinearRegressionNe;
use morpheus::ml::logreg::LogisticRegressionGd;
use morpheus::prelude::*;

const TEST_SCALE: f64 = 0.002;

#[test]
fn every_dataset_generates_with_consistent_shape() {
    for spec in realsim::catalog() {
        let ds = spec.generate(TEST_SCALE, 21);
        let stats = ds.tn.stats();
        assert_eq!(stats.n_rows, ds.y.rows(), "{}: target rows", spec.name);
        assert_eq!(
            ds.tn.parts().len(),
            spec.attributes.len() + 1,
            "{}: part count",
            spec.name
        );
        // All base tables are sparse, as in the paper.
        for p in ds.tn.parts() {
            assert!(p.table().is_sparse(), "{}: dense part", spec.name);
        }
    }
}

#[test]
fn operators_agree_on_sparse_star_schemas() {
    for name in ["Expedia", "Movies", "Flights"] {
        let ds = realsim::by_name(name).unwrap().generate(TEST_SCALE, 23);
        let tm = ds.tn.materialize();
        assert!(
            tm.is_sparse(),
            "{name}: materialized join should stay sparse"
        );
        let x = DenseMatrix::from_fn(ds.tn.cols(), 1, |i, _| ((i % 7) as f64 - 3.0) * 0.1);
        assert!(ds.tn.lmm(&x).approx_eq(&tm.matmul_dense(&x), 1e-9));
        let y = DenseMatrix::from_fn(ds.tn.rows(), 1, |i, _| ((i % 5) as f64 - 2.0) * 0.2);
        assert!(ds.tn.t_lmm(&y).approx_eq(&tm.t_matmul_dense(&y), 1e-9));
        assert!(ds.tn.row_sums().approx_eq(&tm.row_sums(), 1e-9));
        assert!(ds.tn.col_sums().approx_eq(&tm.col_sums(), 1e-9));
    }
}

#[test]
fn crossprod_agrees_on_smallest_dataset() {
    // Flights is the smallest; its d stays manageable at test scale.
    let ds = realsim::by_name("Flights").unwrap().generate(0.01, 25);
    let tm = ds.tn.materialize();
    assert!(ds.tn.crossprod().approx_eq(&tm.crossprod(), 1e-8));
}

#[test]
fn all_four_algorithms_run_factorized_equals_materialized() {
    let ds = realsim::by_name("Walmart")
        .unwrap()
        .generate(TEST_SCALE, 27);
    let tm = ds.tn.materialize();
    let labels = ds.labels();

    let lr = LogisticRegressionGd::new(1e-4, 5);
    assert!(lr
        .fit(&ds.tn, &labels)
        .w
        .approx_eq(&lr.fit(&tm, &labels).w, 1e-9));

    let ne = LinearRegressionNe::with_ridge(1e-6);
    assert!(ne.fit(&ds.tn, &ds.y).approx_eq(&ne.fit(&tm, &ds.y), 1e-5));

    let km = KMeans::new(4, 4);
    assert_eq!(km.fit(&ds.tn).assignments, km.fit(&tm).assignments);

    let g = Gnmf::new(3, 4);
    let (mf, mm) = (g.fit(&ds.tn), g.fit(&tm));
    assert!(mf.h.approx_eq(&mm.h, 1e-6));
}

#[test]
fn ratings_style_dataset_with_empty_entity_features_trains() {
    // Movies: d_S = 0 — the entity table carries only target + keys.
    let ds = realsim::by_name("Movies").unwrap().generate(TEST_SCALE, 29);
    assert_eq!(ds.tn.parts()[0].table().cols(), 0);
    let labels = ds.labels();
    let tm = ds.tn.materialize();
    let lr = LogisticRegressionGd::new(1e-4, 5);
    let wf = lr.fit(&ds.tn, &labels).w;
    let wm = lr.fit(&tm, &labels).w;
    assert!(wf.approx_eq(&wm, 1e-9));
    assert_eq!(wf.rows(), ds.tn.cols());
}

#[test]
fn decision_rule_factorizes_table6_datasets_except_the_borderline_one() {
    // Six of the seven datasets clear the conservative thresholds. Yelp is
    // a known false negative of the min-tuple-ratio generalization: its
    // larger attribute table gives TR_min = 215879/43873 ≈ 4.9, a hair
    // under τ = 5, even though the paper measures large factorized wins on
    // it. This is the "conservative by design" trade-off of §5.1 — the
    // rule never predicts a win that turns into a loss, at the cost of
    // missing some wins near the boundary.
    let rule = DecisionRule::default();
    for spec in realsim::catalog() {
        let ds = spec.generate(TEST_SCALE, 31);
        let predicted = rule.should_factorize(&ds.tn);
        if spec.name == "Yelp" {
            assert!(!predicted, "Yelp sits just below τ and should be routed M");
        } else {
            assert!(
                predicted,
                "{} unexpectedly routed to materialized",
                spec.name
            );
        }
    }
}
