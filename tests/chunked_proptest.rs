//! Property-based validation of the chunked (ORE-analog) backends: for
//! random join shapes, chunk sizes, and worker counts, every operator must
//! agree with the in-memory normalized/materialized result — chunking and
//! parallelism are pure execution details.

use morpheus::chunked::{ChunkedMatrix, ChunkedNormalizedMatrix, Executor};
use morpheus::core::LinearOperand;
use morpheus::prelude::*;
use proptest::prelude::*;

fn mat(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut state = seed | 1;
    DenseMatrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn pkfk(n_s: usize, d_s: usize, n_r: usize, d_r: usize, seed: u64) -> NormalizedMatrix {
    let s = mat(n_s, d_s, seed);
    let r = mat(n_r, d_r, seed ^ 0xBEEF);
    let fk: Vec<usize> = (0..n_s).map(|i| (i * 13 + 5) % n_r).collect();
    NormalizedMatrix::pk_fk(s.into(), &fk, r.into())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chunked_normalized_agrees_with_in_memory(
        n_s in 3usize..40,
        d_s in 1usize..4,
        n_r in 1usize..6,
        d_r in 1usize..4,
        chunk in 1usize..16,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let tn = pkfk(n_s, d_s, n_r, d_r, seed);
        let c = ChunkedNormalizedMatrix::from_normalized(&tn, chunk, Executor::new(threads));
        prop_assert_eq!(c.nrows(), tn.rows());
        prop_assert_eq!(c.ncols(), tn.cols());

        let x = mat(tn.cols(), 2, seed ^ 0x11);
        prop_assert!(c.lmm(&x).approx_eq(&tn.lmm(&x), 1e-10));
        let y = mat(tn.rows(), 2, seed ^ 0x22);
        prop_assert!(c.t_lmm(&y).approx_eq(&tn.t_lmm(&y), 1e-10));
        let z = mat(2, tn.rows(), seed ^ 0x33);
        prop_assert!(c.rmm(&z).approx_eq(&tn.rmm(&z), 1e-10));
        prop_assert!(LinearOperand::crossprod(&c).approx_eq(&tn.crossprod(), 1e-9));
        prop_assert!(LinearOperand::row_sums(&c).approx_eq(&tn.row_sums(), 1e-10));
        prop_assert!(LinearOperand::col_sums(&c).approx_eq(&tn.col_sums(), 1e-10));
        let (cs, ts) = (LinearOperand::sum(&c), tn.sum());
        prop_assert!((cs - ts).abs() <= 1e-9 * ts.abs().max(1.0));
        prop_assert!(c.materialize().approx_eq(&tn.materialize(), 1e-12));
    }

    #[test]
    fn chunked_matrix_agrees_with_dense(
        rows in 1usize..40,
        cols in 1usize..6,
        chunk in 1usize..16,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let d = mat(rows, cols, seed);
        let m = Matrix::Dense(d.clone());
        let c = ChunkedMatrix::from_matrix(&m, chunk, Executor::new(threads));
        prop_assert_eq!(c.n_chunks(), rows.div_ceil(chunk).max(1));

        let x = mat(cols, 2, seed ^ 0x44);
        prop_assert!(c.lmm(&x).approx_eq(&d.matmul(&x), 1e-10));
        let y = mat(rows, 2, seed ^ 0x55);
        prop_assert!(c.t_lmm(&y).approx_eq(&d.t_matmul(&y), 1e-10));
        prop_assert!(LinearOperand::crossprod(&c).approx_eq(&d.crossprod(), 1e-9));
        prop_assert!(c.scale(2.5).materialize().approx_eq(&m.scalar_mul(2.5), 1e-12));
        prop_assert!(c.squared().materialize().approx_eq(&m.scalar_pow(2.0), 1e-12));
    }

    #[test]
    fn training_is_chunk_invariant(
        chunk_a in 1usize..8,
        chunk_b in 9usize..32,
        seed in any::<u64>(),
    ) {
        // The fitted model must not depend on the chunking or thread count.
        let tn = pkfk(30, 2, 4, 3, seed);
        let y = mat(30, 1, seed ^ 0x66).map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        let trainer = LogisticRegressionGd::new(1e-2, 4);
        let w_a = trainer
            .fit(
                &ChunkedNormalizedMatrix::from_normalized(&tn, chunk_a, Executor::new(1)),
                &y,
            )
            .w;
        let w_b = trainer
            .fit(
                &ChunkedNormalizedMatrix::from_normalized(&tn, chunk_b, Executor::new(3)),
                &y,
            )
            .w;
        let w_ref = trainer.fit(&tn, &y).w;
        prop_assert!(w_a.approx_eq(&w_ref, 1e-10));
        prop_assert!(w_b.approx_eq(&w_ref, 1e-10));
    }
}
