//! Property-based validation of the chunked (ORE-analog) backends: for
//! random join shapes, chunk sizes, and worker counts, every operator must
//! agree with the in-memory normalized/materialized result — chunking and
//! parallelism are pure execution details. The planner-routed and
//! spill-backed paths are held to a harder bar: spilled execution must be
//! *bit-identical* to fully-resident chunked execution at any worker
//! count, and injected spill-I/O faults must degrade chunks to resident —
//! counted, never corrupting results.

use morpheus::chunked::{ChunkedMatrix, ChunkedNormalizedMatrix, Executor, PlannedChunkedMatrix};
use morpheus::core::cost::ChunkedCostCtx;
use morpheus::core::LinearOperand;
use morpheus::core::Strategy as Route;
use morpheus::prelude::*;
use morpheus::runtime::faults;
use proptest::prelude::*;

fn mat(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut state = seed | 1;
    DenseMatrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn pkfk(n_s: usize, d_s: usize, n_r: usize, d_r: usize, seed: u64) -> NormalizedMatrix {
    let s = mat(n_s, d_s, seed);
    let r = mat(n_r, d_r, seed ^ 0xBEEF);
    let fk: Vec<usize> = (0..n_s).map(|i| (i * 13 + 5) % n_r).collect();
    NormalizedMatrix::pk_fk(s.into(), &fk, r.into())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chunked_normalized_agrees_with_in_memory(
        n_s in 3usize..40,
        d_s in 1usize..4,
        n_r in 1usize..6,
        d_r in 1usize..4,
        chunk in 1usize..16,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let tn = pkfk(n_s, d_s, n_r, d_r, seed);
        // Raw-executor path: the property quantifies over worker counts,
        // which the Runtime-budget default deliberately hides.
        #[allow(deprecated)]
        let c = ChunkedNormalizedMatrix::from_normalized(&tn, chunk, Executor::new(threads));
        prop_assert_eq!(c.nrows(), tn.rows());
        prop_assert_eq!(c.ncols(), tn.cols());

        let x = mat(tn.cols(), 2, seed ^ 0x11);
        prop_assert!(c.lmm(&x).approx_eq(&tn.lmm(&x), 1e-10));
        let y = mat(tn.rows(), 2, seed ^ 0x22);
        prop_assert!(c.t_lmm(&y).approx_eq(&tn.t_lmm(&y), 1e-10));
        let z = mat(2, tn.rows(), seed ^ 0x33);
        prop_assert!(c.rmm(&z).approx_eq(&tn.rmm(&z), 1e-10));
        prop_assert!(LinearOperand::crossprod(&c).approx_eq(&tn.crossprod(), 1e-9));
        prop_assert!(LinearOperand::row_sums(&c).approx_eq(&tn.row_sums(), 1e-10));
        prop_assert!(LinearOperand::col_sums(&c).approx_eq(&tn.col_sums(), 1e-10));
        let (cs, ts) = (LinearOperand::sum(&c), tn.sum());
        prop_assert!((cs - ts).abs() <= 1e-9 * ts.abs().max(1.0));
        prop_assert!(c.materialize().approx_eq(&tn.materialize(), 1e-12));
    }

    #[test]
    fn chunked_matrix_agrees_with_dense(
        rows in 1usize..40,
        cols in 1usize..6,
        chunk in 1usize..16,
        threads in 1usize..4,
        seed in any::<u64>(),
    ) {
        let d = mat(rows, cols, seed);
        let m = Matrix::Dense(d.clone());
        #[allow(deprecated)]
        let c = ChunkedMatrix::from_matrix(&m, chunk, Executor::new(threads));
        prop_assert_eq!(c.n_chunks(), rows.div_ceil(chunk).max(1));

        let x = mat(cols, 2, seed ^ 0x44);
        prop_assert!(c.lmm(&x).approx_eq(&d.matmul(&x), 1e-10));
        let y = mat(rows, 2, seed ^ 0x55);
        prop_assert!(c.t_lmm(&y).approx_eq(&d.t_matmul(&y), 1e-10));
        prop_assert!(LinearOperand::crossprod(&c).approx_eq(&d.crossprod(), 1e-9));
        prop_assert!(c.scale(2.5).materialize().approx_eq(&m.scalar_mul(2.5), 1e-12));
        prop_assert!(c.squared().materialize().approx_eq(&m.scalar_pow(2.0), 1e-12));
    }

    #[test]
    fn training_is_chunk_invariant(
        chunk_a in 1usize..8,
        chunk_b in 9usize..32,
        seed in any::<u64>(),
    ) {
        // The fitted model must not depend on the chunking or thread count.
        let tn = pkfk(30, 2, 4, 3, seed);
        let y = mat(30, 1, seed ^ 0x66).map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        let trainer = LogisticRegressionGd::new(1e-2, 4);
        #[allow(deprecated)]
        let a = ChunkedNormalizedMatrix::from_normalized(&tn, chunk_a, Executor::new(1));
        #[allow(deprecated)]
        let b = ChunkedNormalizedMatrix::from_normalized(&tn, chunk_b, Executor::new(3));
        let w_a = trainer.fit(&a, &y).w;
        let w_b = trainer.fit(&b, &y).w;
        let w_ref = trainer.fit(&tn, &y).w;
        prop_assert!(w_a.approx_eq(&w_ref, 1e-10));
        prop_assert!(w_b.approx_eq(&w_ref, 1e-10));
    }

    #[test]
    fn planner_routed_chunked_agrees_with_in_memory_across_strategies_and_threads(
        n_s in 8usize..60,
        d_s in 1usize..4,
        n_r in 2usize..8,
        d_r in 1usize..4,
        chunk in 1usize..24,
        seed in any::<u64>(),
    ) {
        let tn = pkfk(n_s, d_s, n_r, d_r, seed);
        let x = mat(tn.cols(), 2, seed ^ 0x77);
        // (resident, spilled): same chunking, budgets MAX and 0.
        let ctxs = [f64::INFINITY, 0.0].map(|budget| ChunkedCostCtx {
            chunk_rows: chunk,
            resident_budget_bytes: budget,
            spill_read_ns_per_byte: 0.5,
            spill_write_ns_per_byte: 1.0,
        });
        // Chunk-level parallelism comes from the Runtime budget; pin it
        // per pass and restore the configured count afterwards.
        let configured = Runtime::threads();
        let mut per_thread: Vec<Vec<u64>> = Vec::new();
        for threads in [1usize, 8] {
            Runtime::set_threads(threads);
            let mut fingerprint: Vec<u64> = Vec::new();
            for strategy in [
                Route::CostBased,
                Route::AlwaysFactorize,
                Route::AlwaysMaterialize,
            ] {
                for ctx in ctxs {
                    let chunked =
                        PlannedChunkedMatrix::with_strategy(tn.clone(), chunk, strategy)
                            .with_profile(MachineProfile::REFERENCE)
                            .with_cost_ctx(ctx);
                    let planned = PlannedMatrix::with_strategy(tn.clone(), strategy)
                        .with_profile(MachineProfile::REFERENCE);
                    // Chunked-vs-unchunked: equal up to reduction
                    // regrouping (chunk partials vs full-matrix bands).
                    prop_assert!(chunked.lmm(&x).approx_eq(&planned.lmm(&x), 1e-10));
                    prop_assert!(LinearOperand::row_sums(&chunked)
                        .approx_eq(&LinearOperand::row_sums(&planned), 1e-10));
                    prop_assert!(LinearOperand::crossprod(&chunked)
                        .approx_eq(&LinearOperand::crossprod(&planned), 1e-9));
                    let (cs, ps) = (LinearOperand::sum(&chunked), LinearOperand::sum(&planned));
                    prop_assert!((cs - ps).abs() <= 1e-9 * ps.abs().max(1.0));
                    // Spilled-vs-resident and across worker counts:
                    // bit-identical, by chunk-order combination.
                    fingerprint.extend(chunked.lmm(&x).as_slice().iter().map(|v| v.to_bits()));
                    fingerprint.push(LinearOperand::sum(&chunked).to_bits());
                }
            }
            per_thread.push(fingerprint);
        }
        Runtime::set_threads(configured);
        prop_assert_eq!(&per_thread[0], &per_thread[1]);
    }

    #[test]
    fn injected_spill_faults_degrade_to_resident_without_corruption(
        rows in 4usize..48,
        cols in 1usize..5,
        chunk in 1usize..12,
        write_fail in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // Seeded chaos on the spill failpoints: whichever chunks fail to
        // spill stay resident (counted as SpillFallback degradations) and
        // every result stays bit-identical to the clean resident build.
        let _guard = faults::exclusive();
        let d = mat(rows, cols, seed);
        let m = Matrix::Dense(d.clone());
        let clean = ChunkedMatrix::with_budget(&m, chunk, u64::MAX);
        let x = mat(cols, 2, seed ^ 0x88);
        let clean_lmm = clean.lmm(&x);
        let clean_sum = LinearOperand::sum(&clean);

        let point = if write_fail { "spill.write=io_error" } else { "spill.map=error" };
        faults::configure(&format!("{point}(0.5,seed={})", seed | 1)).unwrap();
        let before = faults::stats().spill_fallbacks;
        let chaotic = ChunkedMatrix::with_budget(&m, chunk, 0);
        let degraded = faults::stats().spill_fallbacks - before;
        faults::clear();

        // Every chunk either spilled or was counted as a fallback.
        prop_assert_eq!(
            chaotic.n_spilled() as u64 + degraded,
            chaotic.n_chunks() as u64
        );
        let chaotic_lmm = chaotic.lmm(&x);
        prop_assert_eq!(chaotic_lmm.as_slice(), clean_lmm.as_slice());
        prop_assert_eq!(LinearOperand::sum(&chaotic).to_bits(), clean_sum.to_bits());
        prop_assert!(chaotic.materialize().approx_eq(&m, 0.0));
    }
}
