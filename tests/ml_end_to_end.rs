//! End-to-end ML integration: the same algorithm code must produce the
//! same model on every backend — materialized `Matrix`, factorized
//! `NormalizedMatrix`, the per-operator `PlannedMatrix`, and the chunked
//! (ORE-analog) backends — across all four paper algorithms.

use morpheus::chunked::{ChunkedMatrix, ChunkedNormalizedMatrix};
use morpheus::data::synth::{MnJoinSpec, PkFkSpec, StarSpec};
use morpheus::ml::gnmf::Gnmf;
use morpheus::ml::kmeans::KMeans;
use morpheus::ml::linreg::{LinearRegressionCofactor, LinearRegressionGd, LinearRegressionNe};
use morpheus::ml::logreg::LogisticRegressionGd;
use morpheus::ml::orion::OrionLogisticRegression;
use morpheus::prelude::*;

/// Cost-based planner with deterministic reference rates, so the routing
/// tested here does not depend on the machine running the tests.
fn planned(tn: &NormalizedMatrix) -> PlannedMatrix {
    PlannedMatrix::with_strategy(tn.clone(), Strategy::CostBased)
        .with_profile(MachineProfile::REFERENCE)
}

fn backends(
    tn: &NormalizedMatrix,
) -> (
    Matrix,
    PlannedMatrix,
    ChunkedNormalizedMatrix,
    ChunkedMatrix,
) {
    let tm = tn.materialize();
    let cn = ChunkedNormalizedMatrix::new(tn, 64);
    let cm = ChunkedMatrix::new(&tm, 64);
    (tm, planned(tn), cn, cm)
}

#[test]
fn logistic_regression_identical_on_all_backends() {
    let ds = PkFkSpec::from_ratios(8.0, 2.0, 40, 4, 1).generate();
    let y = ds.labels();
    let trainer = LogisticRegressionGd::new(1e-3, 8);
    let (tm, adaptive, cn, cm) = backends(&ds.tn);

    let w_ref = trainer.fit(&ds.tn, &y).w;
    for w in [
        trainer.fit(&tm, &y).w,
        trainer.fit(&adaptive, &y).w,
        trainer.fit(&cn, &y).w,
        trainer.fit(&cm, &y).w,
    ] {
        assert!(w.approx_eq(&w_ref, 1e-9), "backend diverged");
    }
}

#[test]
fn linear_regression_identical_on_all_backends() {
    let ds = PkFkSpec::from_ratios(8.0, 2.0, 40, 4, 2).generate();
    let (tm, adaptive, cn, cm) = backends(&ds.tn);
    let ne = LinearRegressionNe::new();
    let w_ref = ne.fit(&ds.tn, &ds.y);
    for w in [
        ne.fit(&tm, &ds.y),
        ne.fit(&adaptive, &ds.y),
        ne.fit(&cn, &ds.y),
        ne.fit(&cm, &ds.y),
    ] {
        assert!(w.approx_eq(&w_ref, 1e-6));
    }
    // GD and co-factor agree between factorized and materialized.
    let gd = LinearRegressionGd::new(1e-4, 10);
    let (wf, _) = gd.fit(&ds.tn, &ds.y);
    let (wm, _) = gd.fit(&tm, &ds.y);
    assert!(wf.approx_eq(&wm, 1e-9));
    let cof = LinearRegressionCofactor::new(0.05, 10);
    assert!(cof.fit(&ds.tn, &ds.y).approx_eq(&cof.fit(&tm, &ds.y), 1e-9));
}

#[test]
fn kmeans_identical_on_all_backends() {
    let ds = PkFkSpec::from_ratios(6.0, 2.0, 30, 3, 3).generate();
    let (tm, adaptive, cn, cm) = backends(&ds.tn);
    let km = KMeans::new(3, 6);
    let m_ref = km.fit(&ds.tn);
    for m in [km.fit(&tm), km.fit(&adaptive), km.fit(&cn), km.fit(&cm)] {
        assert_eq!(m.assignments, m_ref.assignments);
        assert!(m.centroids.approx_eq(&m_ref.centroids, 1e-8));
    }
}

#[test]
fn gnmf_identical_on_factorized_and_materialized() {
    // GNMF needs non-negative data: use the star generator output shifted.
    let ds = StarSpec {
        n_s: 60,
        d_s: 2,
        tables: vec![(5, 3), (4, 2)],
        seed: 4,
    }
    .generate();
    let nonneg = ds.tn.scalar_add(2.0); // stays normalized
    let tm = nonneg.materialize();
    let g = Gnmf::new(2, 8);
    let mf = g.fit(&nonneg);
    let mm = g.fit(&tm);
    assert!(mf.w.approx_eq(&mm.w, 1e-7));
    assert!(mf.h.approx_eq(&mm.h, 1e-7));
}

#[test]
fn mn_join_training_matches() {
    let ds = MnJoinSpec {
        n_s: 60,
        n_r: 60,
        d_s: 3,
        d_r: 3,
        n_u: 12,
        seed: 5,
    }
    .generate();
    let y = ds.labels();
    let tm = ds.tn.materialize();
    let trainer = LogisticRegressionGd::new(1e-3, 6);
    assert!(trainer
        .fit(&ds.tn, &y)
        .w
        .approx_eq(&trainer.fit(&tm, &y).w, 1e-9));
}

#[test]
fn orion_and_morpheus_agree_and_beat_chance() {
    let ds = PkFkSpec::from_ratios(10.0, 2.0, 50, 4, 6).generate();
    let y = ds.labels();
    let parts = ds.tn.parts();
    let s = parts[0].table().to_dense();
    let r = parts[1].table().to_dense();
    let k = parts[1].indicator().as_rows().unwrap();
    let fk: Vec<usize> = (0..k.rows()).map(|i| k.row(i).0[0]).collect();

    let w_orion = OrionLogisticRegression::new(1e-2, 60).fit(&s, &fk, &r, &y);
    let w_morpheus = LogisticRegressionGd::new(1e-2, 60).fit(&ds.tn, &y).w;
    assert!(w_orion.approx_eq(&w_morpheus, 1e-8));

    let proba = morpheus::ml::logreg::predict_proba(&ds.tn, &w_morpheus);
    assert!(morpheus::ml::metrics::accuracy(&proba, &y) > 0.7);
}

#[test]
fn heuristic_strategy_controls_routing_without_changing_results() {
    // Low-redundancy join: under the paper's τ/ρ rule the planner must
    // route every operator to materialized and still train the same model.
    let ds = PkFkSpec::from_ratios(2.0, 0.5, 40, 8, 7).generate();
    let heuristic =
        PlannedMatrix::with_strategy(ds.tn.clone(), Strategy::Heuristic(DecisionRule::default()));
    let routing = heuristic.plan(OpKind::Lmm { m: 1 }).unwrap();
    assert!(!routing.factorized, "rule must reject TR=2/FR=0.5");
    let y = ds.labels();
    let trainer = LogisticRegressionGd::new(1e-3, 5);
    assert!(trainer
        .fit(&heuristic, &y)
        .w
        .approx_eq(&trainer.fit(&ds.tn, &y).w, 1e-9));
    // The materialized route was taken: the join is memoized.
    assert!(heuristic.is_memoized());
}

#[test]
fn training_on_transposed_data_uses_appendix_rules() {
    // Fit on Tᵀ treated as a data matrix (features <-> examples swap):
    // the transposed rewrites must agree with materialized training.
    let ds = PkFkSpec::from_ratios(4.0, 1.0, 20, 3, 8).generate();
    let tt = ds.tn.transpose();
    let tm = tt.materialize();
    let y = DenseMatrix::from_fn(tt.rows(), 1, |i, _| if i % 2 == 0 { 1.0 } else { -1.0 });
    let trainer = LogisticRegressionGd::new(1e-3, 5);
    assert!(trainer
        .fit(&tt, &y)
        .w
        .approx_eq(&trainer.fit(&tm, &y).w, 1e-9));
}
