//! Integration test for `MachineProfile` persistence through the real
//! `MORPHEUS_PROFILE_PATH` environment hook: first use calibrates and
//! writes the versioned file, later processes (simulated here through the
//! injectable loader) read it back bit-for-bit and never recalibrate.
//!
//! Exactly one test here touches `MachineProfile::global` (it resolves
//! once per process, so the env var must be set before any other code in
//! the binary reads it); every other test drives the injectable
//! `load_else_calibrate_with` seam, where calibration is a closure and
//! the path is explicit. The crash-safety tests inject faults through
//! `morpheus::runtime::faults` — persistence goes through a
//! same-directory temp file and an atomic rename, so a failed or crashed
//! write must always leave the previous file intact.

use morpheus::prelude::*;
use morpheus::runtime::faults;

fn temp_profile_path(name: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "morpheus-persist-test-{name}-{}.txt",
        std::process::id()
    ));
    path
}

/// A distinctive, valid profile (not `REFERENCE`) so tests can tell a
/// fresh "calibration" from anything loaded or left behind.
fn fresh_rates() -> MachineProfile {
    let mut p = MachineProfile::REFERENCE;
    p.ew_ns = 1.0625;
    p.op_overhead_ns = 775.0;
    p
}

#[test]
fn global_profile_round_trips_through_the_env_path() {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "morpheus-global-profile-{}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    std::env::set_var(morpheus::core::PROFILE_PATH_ENV, &path);

    // First use: no file exists, so this calibrates and persists.
    let calibrated = *MachineProfile::global();
    let text = std::fs::read_to_string(&path).expect("calibration must write the profile file");
    assert_eq!(
        MachineProfile::from_text(&text).expect("persisted profile must parse"),
        calibrated,
        "the persisted rates must round-trip exactly"
    );
    assert!(
        text.contains(&format!(
            "format_version = {}",
            morpheus::core::PROFILE_FORMAT_VERSION
        )),
        "persisted profile must carry the current format version"
    );

    // What the *next* process does: load the file, never calibrate. The
    // injectable-loader seam makes the "never" observable in-process.
    let reloaded = MachineProfile::load_else_calibrate_with(path.to_str(), || {
        panic!("a current-version profile file must be loaded, not recalibrated")
    });
    assert_eq!(reloaded, calibrated);

    let _ = std::fs::remove_file(&path);
}

/// `.tmp.<pid>` siblings of `path` (the atomic-rename staging files).
fn tmp_droppings(path: &std::path::Path) -> Vec<std::path::PathBuf> {
    let dir = path.parent().expect("temp paths have a parent");
    let prefix = format!(
        "{}.tmp.",
        path.file_name().expect("named file").to_string_lossy()
    );
    std::fs::read_dir(dir)
        .expect("temp dir must be readable")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy().starts_with(&prefix))
                .unwrap_or(false)
        })
        .collect()
}

#[test]
fn truncated_or_garbage_file_recalibrates_and_rewrites_atomically() {
    for (name, junk) in [
        ("garbage", "!!! not a profile at all !!!".to_string()),
        (
            "truncated",
            MachineProfile::REFERENCE.to_text()[..70].to_string(),
        ),
    ] {
        let path = temp_profile_path(name);
        std::fs::write(&path, &junk).unwrap();
        let out = MachineProfile::load_else_calibrate_with(path.to_str(), fresh_rates);
        assert_eq!(out, fresh_rates(), "case {name}: must recalibrate");
        // The unusable file was replaced — through a temp file and a
        // rename, so no staging droppings survive a successful persist.
        let rewritten = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            MachineProfile::from_text(&rewritten).unwrap(),
            fresh_rates(),
            "case {name}: must rewrite the file"
        );
        assert!(
            tmp_droppings(&path).is_empty(),
            "case {name}: no temp files may remain"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn injected_write_failure_leaves_the_previous_profile_intact() {
    let _guard = faults::exclusive();
    let path = temp_profile_path("io-error");
    // A healthy process persisted its rates earlier...
    let old = MachineProfile::REFERENCE;
    std::fs::write(&path, old.to_text()).unwrap();
    // ...then the file goes stale (simulated by deleting it here and
    // re-persisting under an injected I/O failure: same code path).
    let failures_before = faults::stats().profile_write_failures;
    faults::configure("profile.write=io_error").unwrap();
    let out = MachineProfile::load_else_calibrate_with(
        // A path whose load fails so the calibrator runs and persistence
        // is attempted over the *existing* stale-format file.
        path.to_str(),
        fresh_rates,
    );
    faults::clear();
    // Planning proceeds on the fresh in-memory rates regardless.
    assert_eq!(out, old, "existing valid file loads before any write");
    // Force the write path: unusable file + injected failure.
    std::fs::write(&path, "corrupt").unwrap();
    faults::configure("profile.write=io_error").unwrap();
    let out = MachineProfile::load_else_calibrate_with(path.to_str(), fresh_rates);
    faults::clear();
    assert_eq!(out, fresh_rates(), "planning must proceed on fresh rates");
    // The failed write is counted, the garbage file is untouched (the
    // injected failure struck before the rename), and no temp staging
    // file leaked.
    assert!(faults::stats().profile_write_failures > failures_before);
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "corrupt");
    assert!(tmp_droppings(&path).is_empty());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn crash_during_persist_window_cannot_corrupt_the_target() {
    let _guard = faults::exclusive();
    let path = temp_profile_path("crash-window");
    // The target currently holds an unusable file — the worst case: a
    // crash mid-rewrite must not leave it half-written.
    std::fs::write(&path, "stale contents").unwrap();
    let failures_before = faults::stats().profile_write_failures;
    faults::configure("profile.write=panic").unwrap();
    // The panic strikes between the temp-file write and the rename; the
    // loader contains it (persistence is best-effort) and still returns
    // the fresh rates.
    let out = MachineProfile::load_else_calibrate_with(path.to_str(), fresh_rates);
    faults::clear();
    assert_eq!(out, fresh_rates());
    assert!(faults::stats().profile_write_failures > failures_before);
    // The target was never touched — only the staging file existed in
    // the crash window.
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "stale contents");
    for dropping in tmp_droppings(&path) {
        let _ = std::fs::remove_file(dropping);
    }
    let _ = std::fs::remove_file(&path);
}
