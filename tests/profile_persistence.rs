//! Integration test for `MachineProfile` persistence through the real
//! `MORPHEUS_PROFILE_PATH` environment hook: first use calibrates and
//! writes the versioned file, later processes (simulated here through the
//! injectable loader) read it back bit-for-bit and never recalibrate.
//!
//! This file holds exactly one test on purpose: `MachineProfile::global`
//! resolves once per process, so the env var must be set before any other
//! code in the binary touches it. The fallback behaviors (corrupted,
//! partial, and old-version files; concurrent first use) are unit-tested
//! in `morpheus-core` next to the implementation, where the calibrator is
//! injectable.

use morpheus::prelude::*;

#[test]
fn global_profile_round_trips_through_the_env_path() {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "morpheus-global-profile-{}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    std::env::set_var(morpheus::core::PROFILE_PATH_ENV, &path);

    // First use: no file exists, so this calibrates and persists.
    let calibrated = *MachineProfile::global();
    let text = std::fs::read_to_string(&path).expect("calibration must write the profile file");
    assert_eq!(
        MachineProfile::from_text(&text).expect("persisted profile must parse"),
        calibrated,
        "the persisted rates must round-trip exactly"
    );
    assert!(
        text.contains(&format!(
            "format_version = {}",
            morpheus::core::PROFILE_FORMAT_VERSION
        )),
        "persisted profile must carry the current format version"
    );

    // What the *next* process does: load the file, never calibrate. The
    // injectable-loader seam makes the "never" observable in-process.
    let reloaded = MachineProfile::load_else_calibrate_with(path.to_str(), || {
        panic!("a current-version profile file must be loaded, not recalibrated")
    });
    assert_eq!(reloaded, calibrated);

    let _ = std::fs::remove_file(&path);
}
