//! Property: resizing the process-global worker pool (`Runtime::set_threads`)
//! while parallel sections are in flight never loses a job, never changes
//! a result, and never wedges. Shrinkage is advertised as graceful — the
//! excess workers exit only after the job they are currently helping — so
//! a concurrent resize storm must be completely invisible to callers.
//!
//! The worker thread hammers `Executor::map` / `map_reduce` sections and
//! bit-checks every result against the closed form; the main thread walks
//! a randomized grow/shrink schedule over the pool at the same time.

use morpheus::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Serializes cases: the pool and its configured size are process-global.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn resizing_under_load_loses_no_jobs_and_stays_deterministic(
        seed in any::<u64>(),
        sections in 8usize..40,
        n in 32usize..600,
    ) {
        let _serial = THREADS_LOCK.lock().unwrap();
        let configured = Runtime::threads();
        let stop = Arc::new(AtomicBool::new(false));

        // Load generator: runs parallel sections back to back, checking
        // each against its closed form. Any lost stride or torn result
        // shows up as a wrong element here.
        let worker = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let ex = Executor::new(4);
                let mut rounds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let mapped = ex.map(n, |i| (i as u64) * 3 + 1);
                    for (i, v) in mapped.iter().enumerate() {
                        assert_eq!(*v, (i as u64) * 3 + 1, "round {rounds}: lost or torn element");
                    }
                    let total = ex.map_reduce(n, |i| i as u64, 0, |a, b| a + b);
                    assert_eq!(total, (n as u64) * (n as u64 - 1) / 2, "round {rounds}: bad reduction");
                    rounds += 1;
                }
                rounds
            })
        };

        // Resize storm: a deterministic walk over pool sizes 1..=5
        // (including repeated shrink-to-one, the harshest transition).
        let mut state = seed | 1;
        for _ in 0..sections {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let target = 1 + ((state >> 33) % 5) as usize;
            Runtime::set_threads(target);
            std::thread::yield_now();
        }

        stop.store(true, Ordering::Relaxed);
        let rounds = worker.join().expect("load generator must not panic");
        Runtime::set_threads(configured);
        prop_assert!(rounds > 0, "the load generator must have completed at least one round");
    }
}
