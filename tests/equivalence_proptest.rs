//! Property-based equivalence suite: for *randomly generated* normalized
//! matrices of every join shape, every factorized operator must equal its
//! materialized counterpart — the paper's core correctness claim
//! ("our rewrites do not alter the outputs of the operators", §3.7).

use morpheus::prelude::*;
use morpheus_core::Matrix;
use proptest::prelude::*;
use proptest::Strategy; // shadow the prelude's planner Strategy enum

/// Strategy: a dense PK-FK normalized matrix with bounded dimensions.
fn arb_pkfk() -> impl Strategy<Value = NormalizedMatrix> {
    (1usize..20, 0usize..4, 1usize..6, 1usize..5, any::<u64>()).prop_map(
        |(n_s, d_s, n_r, d_r, seed)| {
            let mut state = seed;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let s = DenseMatrix::from_fn(n_s, d_s, |_, _| next());
            let r = DenseMatrix::from_fn(n_r, d_r, |_, _| next());
            let fk: Vec<usize> = (0..n_s)
                .map(|i| {
                    let v = (next().abs() * n_r as f64) as usize;
                    (i + v) % n_r
                })
                .collect();
            NormalizedMatrix::pk_fk(s.into(), &fk, r.into())
        },
    )
}

/// Strategy: a two-table M:N normalized matrix built from key columns.
fn arb_mn() -> impl Strategy<Value = NormalizedMatrix> {
    (
        2usize..10,
        2usize..10,
        1usize..4,
        1usize..4,
        1u64..5,
        any::<u64>(),
    )
        .prop_map(|(n_s, n_r, d_s, d_r, n_u, seed)| {
            let mut state = seed;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let s = DenseMatrix::from_fn(n_s, d_s, |_, _| next());
            let r = DenseMatrix::from_fn(n_r, d_r, |_, _| next());
            // Guarantee at least one shared key so T is non-empty.
            let js: Vec<u64> = (0..n_s).map(|i| (i as u64) % n_u).collect();
            let jr: Vec<u64> = (0..n_r).map(|i| (i as u64) % n_u).collect();
            NormalizedMatrix::mn_join_on_keys(s.into(), &js, r.into(), &jr)
        })
}

/// Strategy: a star-schema normalized matrix with two attribute tables.
fn arb_star() -> impl Strategy<Value = NormalizedMatrix> {
    (
        2usize..15,
        1usize..3,
        1usize..5,
        1usize..4,
        1usize..4,
        1usize..3,
        any::<u64>(),
    )
        .prop_map(|(n_s, d_s, n_r1, d_r1, n_r2, d_r2, seed)| {
            let mut state = seed;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let s = DenseMatrix::from_fn(n_s, d_s, |_, _| next());
            let r1 = DenseMatrix::from_fn(n_r1, d_r1, |_, _| next());
            let r2 = DenseMatrix::from_fn(n_r2, d_r2, |_, _| next());
            let fk1: Vec<usize> = (0..n_s).map(|i| i % n_r1).collect();
            let fk2: Vec<usize> = (0..n_s).map(|i| (i * 7 + 1) % n_r2).collect();
            NormalizedMatrix::star(s.into(), vec![(fk1, r1.into()), (fk2, r2.into())])
        })
}

fn param(rows: usize, cols: usize) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |i, j| {
        ((i * 13 + j * 5) % 11) as f64 * 0.25 - 1.0
    })
}

fn check_all_ops(tn: &NormalizedMatrix) {
    let tm = tn.materialize();
    let tol = 1e-9;

    // Scalar ops.
    prop_assert_mat(&tn.scalar_mul(2.5).materialize(), &tm.scalar_mul(2.5), tol);
    prop_assert_mat(
        &tn.scalar_add(-1.5).materialize(),
        &tm.scalar_add(-1.5),
        tol,
    );
    prop_assert_mat(&tn.scalar_pow(2.0).materialize(), &tm.scalar_pow(2.0), tol);
    prop_assert_mat(&tn.exp().materialize(), &tm.exp(), tol);

    // Aggregations.
    assert!(tn.row_sums().approx_eq(&tm.row_sums(), tol));
    assert!(tn.col_sums().approx_eq(&tm.col_sums(), tol));
    let (fs, ms) = (tn.sum(), tm.sum());
    assert!((fs - ms).abs() <= tol * ms.abs().max(1.0));

    // Multiplications.
    if tn.cols() > 0 {
        let x = param(tn.cols(), 2);
        assert!(tn.lmm(&x).approx_eq(&tm.matmul_dense(&x), tol));
        let y = param(tn.rows(), 2);
        assert!(tn.t_lmm(&y).approx_eq(&tm.t_matmul_dense(&y), tol));
        let z = param(2, tn.rows());
        assert!(tn.rmm(&z).approx_eq(&tm.dense_matmul(&z), tol));

        // Cross-products (both variants) and the Gram matrix.
        assert!(tn.crossprod().approx_eq(&tm.crossprod(), 1e-8));
        assert!(tn.crossprod_naive().approx_eq(&tm.crossprod(), 1e-8));
        assert!(tn.tcrossprod().approx_eq(&tm.tcrossprod(), 1e-8));

        // Transposed operators (appendix A).
        let tt = tn.transpose();
        let mt = tm.transpose();
        let xt = param(tt.cols(), 2);
        assert!(tt.lmm(&xt).approx_eq(&mt.matmul_dense(&xt), tol));
        assert!(tt.row_sums().approx_eq(&mt.row_sums(), tol));
        assert!(tt.col_sums().approx_eq(&mt.col_sums(), tol));
        assert!(tt.crossprod().approx_eq(&mt.crossprod(), 1e-8));
    }
}

fn prop_assert_mat(a: &Matrix, b: &Matrix, tol: f64) {
    assert!(
        a.approx_eq(b, tol),
        "factorized/materialized mismatch: {a:?} vs {b:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pkfk_operators_equal_materialized(tn in arb_pkfk()) {
        check_all_ops(&tn);
    }

    #[test]
    fn mn_operators_equal_materialized(tn in arb_mn()) {
        check_all_ops(&tn);
    }

    #[test]
    fn star_operators_equal_materialized(tn in arb_star()) {
        check_all_ops(&tn);
    }

    #[test]
    fn pruning_preserves_semantics(tn in arb_pkfk()) {
        let pruned = tn.prune();
        prop_assert!(pruned.materialize().approx_eq(&tn.materialize(), 1e-12));
    }

    #[test]
    fn ginv_satisfies_moore_penrose(tn in arb_pkfk()) {
        // Skip degenerate zero-width inputs.
        if tn.cols() == 0 {
            return Ok(());
        }
        let p = tn.ginv();
        let t = tn.materialize().to_dense();
        let tp = t.matmul(&p);
        prop_assert!(tp.matmul(&t).approx_eq(&t, 1e-5), "T P T != T");
        prop_assert!(p.matmul(&tp).approx_eq(&p, 1e-5), "P T P != P");
    }

    #[test]
    fn scalar_op_chains_stay_closed(tn in arb_star()) {
        // ((2T + 1)^2) / 4 computed entirely in normalized land.
        let chained = tn
            .scalar_mul(2.0)
            .scalar_add(1.0)
            .scalar_pow(2.0)
            .scalar_div(4.0);
        let expected = tn
            .materialize()
            .scalar_mul(2.0)
            .scalar_add(1.0)
            .scalar_pow(2.0)
            .scalar_div(4.0);
        prop_assert!(chained.materialize().approx_eq(&expected, 1e-9));
    }

    #[test]
    fn dmm_matches_materialized(seed in any::<u64>(), n_s in 3usize..10, d_s in 1usize..3, n_r in 1usize..4, d_r in 1usize..3) {
        // Build A, then derive a conformable B with n_B = d_A.
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let sa = DenseMatrix::from_fn(n_s, d_s, |_, _| next());
        let ra = DenseMatrix::from_fn(n_r, d_r, |_, _| next());
        let fka: Vec<usize> = (0..n_s).map(|i| i % n_r).collect();
        let a = NormalizedMatrix::pk_fk(sa.into(), &fka, ra.into());

        let n_b = a.cols();
        let (d_sb, n_rb, d_rb) = (1usize, 2usize.min(n_b), 2usize);
        let sb = DenseMatrix::from_fn(n_b, d_sb, |_, _| next());
        let rb = DenseMatrix::from_fn(n_rb, d_rb, |_, _| next());
        let fkb: Vec<usize> = (0..n_b).map(|i| i % n_rb).collect();
        let b = NormalizedMatrix::pk_fk(sb.into(), &fkb, rb.into());

        let f = a.dmm(&b).to_dense();
        let m = a.materialize().to_dense().matmul(&b.materialize().to_dense());
        prop_assert!(f.approx_eq(&m, 1e-8));
    }
}
