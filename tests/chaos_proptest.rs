//! Chaos property suite: randomized, seeded failpoint schedules injected
//! through `morpheus::runtime::faults` while the full Table-1 kernel
//! battery runs over a PK-FK normalized matrix. The contract under fault:
//!
//! 1. every kernel either returns a **bit-identical** result or surfaces
//!    a structured, attributable injected failure (a panic payload that
//!    [`faults::is_injected_panic`] recognizes) — never a wrong answer,
//!    never an anonymous crash;
//! 2. nothing deadlocks (every battery runs under a watchdog thread);
//! 3. no fault poisons process-global state: clearing the schedule and
//!    re-running must reproduce the fault-free baseline exactly, and
//!    every fallback that fired is visible in the degradation counters.
//!
//! Every test holds the registry's exclusive guard — failpoints are
//! process-global, so schedules must not overlap.

use morpheus::core::Strategy as Route;
use morpheus::prelude::*;
use morpheus::runtime::faults;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Duration;

/// Deterministic dense matrix (same LCG as the other proptest suites).
fn dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    DenseMatrix::from_fn(rows, cols, |_, _| next())
}

/// One kernel outcome. `PartialEq` here is bitwise for the dense payloads
/// (f64 `==`), which is exactly the determinism contract under test.
#[derive(Debug, Clone, PartialEq)]
enum Out {
    M(DenseMatrix),
    X(Matrix),
    S(f64),
}

/// A kernel outcome under fault: the value, or the name of the failpoint
/// whose injected panic surfaced. Non-injected panics are resumed — an
/// anonymous crash under chaos is a bug, not an acceptable outcome.
type Outcome = Result<Out, String>;

fn contain(f: impl FnOnce() -> Out) -> Outcome {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => match faults::is_injected_panic(payload.as_ref()) {
            Some(name) => Err(name.to_string()),
            None => std::panic::resume_unwind(payload),
        },
    }
}

/// Runs the full kernel battery over a fresh cost-based [`PlannedMatrix`]
/// (fresh so a `planner.memo` fault in one run cannot pre-seed the next),
/// containing each kernel independently.
fn battery(
    tn: &NormalizedMatrix,
    xd: &DenseMatrix,
    xn: &DenseMatrix,
    xr: &DenseMatrix,
) -> Vec<Outcome> {
    let planned = PlannedMatrix::with_strategy(tn.clone(), Route::CostBased)
        .with_profile(MachineProfile::REFERENCE);
    vec![
        contain(|| Out::M(planned.lmm(xd))),
        contain(|| Out::M(planned.t_lmm(xn))),
        contain(|| Out::M(planned.rmm(xr))),
        contain(|| Out::M(planned.crossprod())),
        contain(|| Out::M(planned.row_sums())),
        contain(|| Out::M(planned.col_sums())),
        contain(|| Out::S(planned.sum())),
        contain(|| Out::S(planned.scale(1.5).sum())),
        contain(|| Out::X(planned.materialize())),
    ]
}

/// Deadlock watchdog: runs `f` on its own thread and fails loudly if it
/// does not come back within the deadline. A hung parallel section under
/// chaos would otherwise hang the whole suite silently.
fn with_timeout<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::Builder::new()
        .name(format!("chaos-{label}"))
        .spawn(move || {
            let _ = tx.send(catch_unwind(AssertUnwindSafe(f)));
        })
        .expect("chaos watchdog thread must spawn");
    match rx.recv_timeout(Duration::from_secs(30)) {
        Ok(Ok(v)) => {
            let _ = handle.join();
            v
        }
        Ok(Err(payload)) => {
            let _ = handle.join();
            std::panic::resume_unwind(payload)
        }
        Err(_) => panic!("chaos battery `{label}` deadlocked (no result within 30 s)"),
    }
}

/// The data for one case, sized so every kernel crosses the (lowered)
/// parallel threshold without making 16+ proptest cases slow.
fn case_data(seed: u64) -> (NormalizedMatrix, DenseMatrix, DenseMatrix, DenseMatrix) {
    let ds = PkFkSpec::from_ratios(6.0, 2.0, 24, 4, seed).generate();
    let tn = ds.tn;
    let (n, d) = (tn.rows(), tn.cols());
    (
        tn,
        dense(d, 3, seed ^ 0x9e37),
        dense(n, 3, seed ^ 0x79b9),
        dense(3, n, seed ^ 0x85eb),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn randomized_fault_schedules_never_corrupt_results(
        seed in any::<u64>(),
        pct_worker in 0u32..40,
        pct_dispatch in 0u32..40,
        pct_stride in 0u32..25,
        pct_memo in 0u32..60,
        mask in 1u32..32,
    ) {
        let (p_worker, p_dispatch, p_stride, p_memo) = (
            f64::from(pct_worker) / 100.0,
            f64::from(pct_dispatch) / 100.0,
            f64::from(pct_stride) / 100.0,
            f64::from(pct_memo) / 100.0,
        );
        let _guard = faults::exclusive();
        faults::clear();
        let configured = Runtime::threads();
        Runtime::set_threads(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let (tn, xd, xn, xr) = case_data(seed | 1);

            // Fault-free baseline (schedule cleared above).
            let baseline = {
                let (tn, xd, xn, xr) = (tn.clone(), xd.clone(), xn.clone(), xr.clone());
                with_timeout("baseline", move || battery(&tn, &xd, &xn, &xr))
            };
            for out in &baseline {
                assert!(out.is_ok(), "baseline must be fault-free: {out:?}");
            }

            // Build the schedule from the mask; seeds derive from the case
            // seed so every run of this case replays the same firings.
            let mut parts = Vec::new();
            if mask & 1 != 0 {
                parts.push(format!("pool.worker=panic({p_worker},seed={seed})"));
            }
            if mask & 2 != 0 {
                parts.push(format!("pool.dispatch=error({p_dispatch},seed={})", seed ^ 1));
            }
            if mask & 4 != 0 {
                parts.push(format!("exec.stride=panic({p_stride},seed={})", seed ^ 2));
            }
            if mask & 8 != 0 {
                parts.push(format!("planner.memo=panic({p_memo},seed={})", seed ^ 3));
            }
            if mask & 16 != 0 {
                parts.push("simd.detect=off".to_string());
            }
            let spec = parts.join(";");
            faults::reset_stats();
            faults::configure(&spec).expect("generated schedule must parse");

            let faulted = {
                let (tn, xd, xn, xr) = (tn.clone(), xd.clone(), xn.clone(), xr.clone());
                with_timeout("faulted", move || battery(&tn, &xd, &xn, &xr))
            };
            let stats = faults::stats();
            let surfaced: u64 = ["exec.stride", "planner.memo"]
                .iter()
                .map(|p| faults::fired_count(p))
                .sum();
            faults::clear();

            // Every kernel: bit-identical, or an attributable injected
            // failure from a point that can legally surface to the caller.
            // Worker panics heal in place and dispatch faults degrade to
            // inline serial, so neither may ever reach the caller.
            for (got, want) in faulted.iter().zip(&baseline) {
                match got {
                    Ok(out) => assert_eq!(Some(out), want.as_ref().ok()),
                    Err(point) => assert!(
                        point == "exec.stride" || point == "planner.memo",
                        "failpoint `{point}` must never surface to the caller"
                    ),
                }
            }
            if surfaced == 0 {
                assert_eq!(&faulted, &baseline, "unsurfaced faults must be invisible");
            }

            // Every fallback that fired is visible in the counters.
            if faults::fired_count("pool.dispatch") > 0 {
                assert!(stats.pool_serial_fallbacks > 0);
            }
            if faults::fired_count("pool.worker") > 0 {
                assert!(stats.worker_deaths > 0 && stats.worker_respawns >= stats.worker_deaths);
            }
            if mask & 16 != 0 && faults::fired_count("simd.detect") > 0 {
                assert!(stats.simd_fallbacks > 0);
            }

            // Recovery: with the schedule cleared, the same battery must
            // reproduce the baseline bit-for-bit — dead workers healed,
            // memo cells empty (not poisoned), SIMD tier restored.
            let recovered = with_timeout("recovered", move || battery(&tn, &xd, &xn, &xr));
            assert_eq!(recovered, baseline, "post-chaos runs must match the baseline");
        }));
        Runtime::set_threads(configured);
        faults::clear();
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
    }
}

/// End-to-end poisoned-state recovery at the scripting layer: an injected
/// panic inside the plan cache's critical section poisons the cache lock;
/// the next script run must clear-and-recompute instead of failing
/// forever, and the recovery must be visible in `plan_cache_stats`.
#[test]
fn script_layer_recovers_from_a_poisoned_plan_cache() {
    let _guard = faults::exclusive();
    faults::clear();
    if std::env::var_os(morpheus::lang::PLAN_CACHE_ENV).is_some_and(|v| v == "off") {
        return; // nothing to poison with the cache disabled
    }
    let src = "g = sum(crossprod(T))\ng + sum(rowSums(T))";
    let program = morpheus::lang::parse(src).unwrap();
    let env = || {
        let tn = PkFkSpec::from_ratios(4.0, 2.0, 8, 3, 11).generate().tn;
        let mut env = Env::new();
        env.bind(
            "T",
            Value::Normalized(
                PlannedMatrix::with_strategy(tn, Route::CostBased)
                    .with_profile(MachineProfile::REFERENCE),
            ),
        );
        env
    };
    let expected = run_program(&program, &mut env()).unwrap();
    let recoveries_before = morpheus::lang::plan_cache_stats().poison_recoveries;

    faults::configure("plan.cache.lookup=panic(times=1)").unwrap();
    let poisoned = catch_unwind(AssertUnwindSafe(|| run_program(&program, &mut env())));
    faults::clear();
    let payload = poisoned.expect_err("the injected cache panic must surface");
    assert_eq!(
        faults::is_injected_panic(payload.as_ref()),
        Some("plan.cache.lookup")
    );

    // Next run: the poisoned cache is cleared and recomputed, the script
    // result is unchanged, and the recovery is counted.
    let recovered = run_program(&program, &mut env()).unwrap();
    match (&recovered, &expected) {
        (Value::Scalar(a), Value::Scalar(b)) => assert_eq!(a.to_bits(), b.to_bits()),
        other => panic!("script ends in a scalar, got {other:?}"),
    }
    assert!(morpheus::lang::plan_cache_stats().poison_recoveries > recoveries_before);
}
