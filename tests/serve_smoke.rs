//! Serving smoke test — the in-process check CI runs as its own job: an
//! actual [`ScoringService`] over a known PK-FK fixture, driven by
//! concurrent clients, with the full [`ServeStats`] snapshot asserted —
//! correctness, coalescing, admission control, and the zero-fault
//! baseline in one pass.

use morpheus::prelude::*;
use morpheus::serve::{ScoringModel, ScoringService, ServeConfig, ServeMode};
use std::time::Duration;

/// The known fixture: 64 orders over 8 customers, linear model.
fn fixture() -> (NormalizedMatrix, DenseMatrix) {
    let s = DenseMatrix::from_fn(64, 3, |i, j| ((i * 3 + j) % 13) as f64 * 0.25 - 1.5);
    let r = DenseMatrix::from_fn(8, 5, |i, j| ((i * 5 + j) % 7) as f64 * 0.5 - 1.0);
    let fk: Vec<usize> = (0..64).map(|i| (i * 5 + 2) % 8).collect();
    let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
    let w = DenseMatrix::from_fn(tn.cols(), 1, |i, _| (i as f64 - 4.0) * 0.3);
    (tn, w)
}

#[test]
fn serve_smoke() {
    let (tn, w) = fixture();
    let expected = morpheus::ml::linreg::predict(&tn, &w);
    let svc = ScoringService::new(
        tn,
        ScoringModel::Linear(w),
        ServeConfig::default()
            .with_strategy(Strategy::AlwaysFactorize)
            .with_batch_max(64)
            .with_batch_window(Duration::from_millis(1))
            .with_scorers(2),
    );
    assert_eq!(svc.mode(), ServeMode::Factorized);
    assert_eq!(svc.n_rows(), 64);

    let clients = 8usize;
    let per_client = 25usize;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let svc = &svc;
            let expected = &expected;
            scope.spawn(move || {
                for k in 0..per_client {
                    let rows = vec![(c * 11 + k) % 64, (c + k * 7) % 64, (k * 3) % 64];
                    let got = svc.score(rows.clone()).expect("smoke request failed");
                    for (j, &r) in rows.iter().enumerate() {
                        assert_eq!(
                            got[j].to_bits(),
                            expected.get(r, 0).to_bits(),
                            "served score differs from full-table prediction at row {r}"
                        );
                    }
                }
            });
        }
    });

    let stats = svc.stats();
    let requests = (clients * per_client) as u64;
    assert_eq!(stats.requests, requests, "every request admitted");
    assert_eq!(stats.batched_requests, requests, "every request scored");
    assert_eq!(stats.rows_scored, 3 * requests, "every row scored");
    assert_eq!(stats.shed, 0, "no load shedding at this rate");
    assert_eq!(stats.batch_aborts, 0, "no aborted batches");
    assert_eq!(stats.queue_depth, 0, "queue drained");
    assert!(stats.batches >= 1 && stats.batches <= requests);
    assert!(stats.coalesce_ratio >= 1.0);
    assert!(stats.max_queue_depth >= 1);
    // Zero-fault baseline: an unfaulted serving run must not trip any
    // self-healing path.
    assert_eq!(stats.faults.injected, 0);
    assert_eq!(stats.faults.serve_batch_aborts, 0);
    assert_eq!(stats.faults.lock_recoveries, 0);
    assert_eq!(stats.plan_cache.poison_recoveries, 0);
}

/// The same fixture served through [`ServeConfig::from_env`], so a CI
/// step can point the `MORPHEUS_BATCH_*` variables at unusual knobs
/// (tiny window, small batch cap, short queue) and this test proves the
/// env-configured service still honors the coalescing contract: a
/// pipelined burst (coalesced into batches) is bit-identical to the
/// same requests scored one at a time under the same env config. With
/// nothing set it covers the documented defaults. The strategy comes
/// from `MORPHEUS_STRATEGY`, so both services share whatever mode the
/// env picks — the comparison is coalescing-only by construction.
#[test]
fn serve_smoke_env_config() {
    let (tn, w) = fixture();
    let batched = ScoringService::new(
        tn.clone(),
        ScoringModel::Linear(w.clone()),
        ServeConfig::from_env(),
    );
    let one_by_one = ScoringService::new(
        tn,
        ScoringModel::Linear(w),
        ServeConfig::from_env().with_batch_max(1),
    );
    let requests: Vec<Vec<usize>> = (0..48usize)
        .map(|k| vec![(k * 13 + 5) % 64, (k * 29 + 1) % 64])
        .collect();
    let tickets: Vec<_> = requests
        .iter()
        .map(|rows| {
            batched
                .submit(rows.clone())
                .expect("env-config submit failed")
        })
        .collect();
    for (rows, ticket) in requests.iter().zip(tickets) {
        let got = ticket.wait().expect("env-config request failed");
        let reference = one_by_one
            .score(rows.clone())
            .expect("env-config reference request failed");
        for (j, (&g, &e)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "env-configured coalesced response differs from batch-size-1 at offset {j}"
            );
        }
    }
    let stats = batched.stats();
    assert_eq!(stats.requests, 48);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.batch_aborts, 0);
}
