//! The calibration watchdog end to end: a hostile machine (simulated by
//! the `profile.calibrate` failpoint) must never block first use — the
//! planner proceeds on the built-in fallback rates, the timeout is
//! counted, and the fallback is **never persisted** so a later healthy
//! process still calibrates for real.
//!
//! This binary owns `MORPHEUS_CALIBRATION_TIMEOUT_MS` and
//! `MORPHEUS_PROFILE_PATH` (its `MachineProfile::global()` resolution is
//! the one under test), so these tests live apart from the other profile
//! suites. Every test holds the failpoint registry's exclusive guard and
//! mutates the env only inside it.

use morpheus::prelude::*;
use morpheus::runtime::faults;

#[test]
fn hostile_first_use_falls_back_and_does_not_persist() {
    let _guard = faults::exclusive();
    let mut path = std::env::temp_dir();
    path.push(format!(
        "morpheus-watchdog-global-{}.txt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    std::env::set_var(morpheus::core::PROFILE_PATH_ENV, &path);
    std::env::set_var(morpheus::core::CALIBRATION_TIMEOUT_ENV, "50");
    let timeouts_before = faults::stats().calibration_timeouts;
    faults::configure("profile.calibrate=sleep(5000)").unwrap();
    // First use: calibration hangs, the watchdog trips at 50 ms, and the
    // process gets the built-in rates instead of blocking five seconds.
    let profile = *MachineProfile::global();
    faults::clear();
    assert_eq!(profile, MachineProfile::FALLBACK);
    assert!(faults::stats().calibration_timeouts > timeouts_before);
    // Unmeasured rates must not poison the profile cache on disk: a
    // later healthy process has to calibrate for real.
    assert!(
        !path.exists(),
        "fallback rates must never be persisted to MORPHEUS_PROFILE_PATH"
    );
    std::env::remove_var(morpheus::core::CALIBRATION_TIMEOUT_ENV);
    std::env::remove_var(morpheus::core::PROFILE_PATH_ENV);
}

#[test]
fn watchdogged_calibration_times_out_to_fallback_rates() {
    let _guard = faults::exclusive();
    std::env::set_var(morpheus::core::CALIBRATION_TIMEOUT_ENV, "50");
    let timeouts_before = faults::stats().calibration_timeouts;
    faults::configure("profile.calibrate=sleep(2000)").unwrap();
    let result = MachineProfile::calibrate_watchdogged();
    faults::clear();
    std::env::remove_var(morpheus::core::CALIBRATION_TIMEOUT_ENV);
    assert!(
        !result.measured,
        "a timed-out calibration is not a measurement"
    );
    assert_eq!(result.profile, MachineProfile::FALLBACK);
    assert!(faults::stats().calibration_timeouts > timeouts_before);
}

#[test]
fn crashed_calibration_falls_back_instead_of_unwinding() {
    let _guard = faults::exclusive();
    // Generous deadline: the fallback here comes from the *death* of the
    // calibration thread (channel disconnect), not the timeout.
    std::env::set_var(morpheus::core::CALIBRATION_TIMEOUT_ENV, "60000");
    let timeouts_before = faults::stats().calibration_timeouts;
    faults::configure("profile.calibrate=panic").unwrap();
    let result = MachineProfile::calibrate_watchdogged();
    faults::clear();
    std::env::remove_var(morpheus::core::CALIBRATION_TIMEOUT_ENV);
    assert!(!result.measured);
    assert_eq!(result.profile, MachineProfile::FALLBACK);
    assert!(faults::stats().calibration_timeouts > timeouts_before);
}

#[test]
fn disabled_watchdog_still_contains_a_calibration_panic() {
    let _guard = faults::exclusive();
    std::env::set_var(morpheus::core::CALIBRATION_TIMEOUT_ENV, "0");
    faults::configure("profile.calibrate=panic").unwrap();
    let result = MachineProfile::calibrate_watchdogged();
    faults::clear();
    std::env::remove_var(morpheus::core::CALIBRATION_TIMEOUT_ENV);
    assert!(!result.measured);
    assert_eq!(result.profile, MachineProfile::FALLBACK);
}

#[test]
fn healthy_calibration_is_measured() {
    let _guard = faults::exclusive();
    // Default (generous) deadline, no faults: the real microbenchmarks
    // run and the result counts as measured (hence persistable).
    let result = MachineProfile::calibrate_watchdogged();
    assert!(result.measured);
    assert!(result.profile.ew_ns > 0.0 && result.profile.ew_ns.is_finite());
}
