//! Integration tests for the cost model (Table 3/11), the decision rule,
//! and structural invariants that span crates.

use morpheus::core::cost::{self, Dims};
use morpheus::data::synth::PkFkSpec;
use morpheus::prelude::*;

#[test]
fn cost_model_limits_match_paper_table3() {
    // lim TR→∞ speedup = 1 + FR for linear ops; (1+FR)² for crossprod.
    for fr in [0.5, 1.0, 2.0, 4.0] {
        let d = Dims {
            n_s: 1e9,
            d_s: 20.0,
            n_r: 1e3,
            d_r: fr * 20.0,
        };
        let lin = cost::scalar_op(&d).speedup();
        assert!((lin - (1.0 + fr)).abs() / (1.0 + fr) < 1e-3);
        let cp = cost::crossprod(&d).speedup();
        assert!((cp - (1.0 + fr).powi(2)).abs() / (1.0 + fr).powi(2) < 1e-2);
    }
    // lim FR→∞ speedup = TR.
    for tr in [2.0, 10.0, 50.0] {
        let d = Dims {
            n_s: tr * 1e4,
            d_s: 1.0,
            n_r: 1e4,
            d_r: 1e7,
        };
        let lin = cost::scalar_op(&d).speedup();
        assert!((lin - tr).abs() / tr < 1e-2);
    }
}

#[test]
fn cost_model_redundancy_equals_size_ratio() {
    // §3.3.1: the scalar-op speedup is exactly size(T) / (size(S)+size(R)).
    let ds = PkFkSpec::from_ratios(10.0, 2.0, 100, 10, 1).generate();
    let d = Dims::new(1000, 10, 100, 20);
    let predicted = cost::scalar_op(&d).speedup();
    assert!((predicted - ds.tn.redundancy_ratio()).abs() < 1e-9);
}

#[test]
fn decision_rule_matches_cost_model_sign_on_clear_cases() {
    let rule = DecisionRule::default();
    // Deep in the win region, the model predicts > 1 and the rule says F.
    let hot = PkFkSpec::from_ratios(20.0, 4.0, 50, 5, 2).generate();
    assert!(rule.should_factorize(&hot.tn));
    let d_hot = Dims::new(1000, 5, 50, 20);
    assert!(cost::scalar_op(&d_hot).speedup() > 1.0);
    // Deep in the loss region the rule refuses even though raw flop counts
    // might still favor F — it is deliberately conservative about operator
    // overheads (§5.1).
    let cold = PkFkSpec::from_ratios(1.0, 0.25, 40, 8, 3).generate();
    assert!(!rule.should_factorize(&cold.tn));
}

#[test]
fn normalized_matrix_never_materializes_during_rewrites() {
    // Indirect structural check: factorized operator results on a join
    // whose materialized form would be huge. 2000 logical rows x 3000
    // columns = 48 MB dense — but the factorized ops only ever touch the
    // base tables (~3000 entries each); running several of them in
    // milliseconds-scale memory is the evidence.
    let s = DenseMatrix::from_fn(2_000, 1, |i, _| (i % 17) as f64);
    let r = DenseMatrix::from_fn(2, 2_999, |i, j| ((i + j) % 13) as f64 * 0.1);
    let fk: Vec<usize> = (0..2_000).map(|i| i % 2).collect();
    let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
    assert_eq!(tn.cols(), 3_000);
    let x = DenseMatrix::from_fn(3_000, 1, |i, _| ((i % 7) as f64 - 3.0) * 0.01);
    let out = tn.lmm(&x);
    assert_eq!(out.shape(), (2_000, 1));
    assert!((tn.sum() - tn.materialize().sum()).abs() < 1e-6 * tn.sum().abs().max(1.0));
}

#[test]
fn join_stats_round_trip_through_generators() {
    let spec = PkFkSpec::from_ratios(12.0, 3.0, 64, 8, 9);
    let ds = spec.generate();
    let stats = ds.tn.stats();
    assert_eq!(stats.n_rows, 768);
    assert_eq!(stats.d_entity, 8);
    assert_eq!(stats.attr_dims, vec![(64, 24)]);
    assert!((stats.tuple_ratio - 12.0).abs() < 1e-12);
    assert!((stats.feature_ratio - 3.0).abs() < 1e-12);
}

#[test]
fn facade_prelude_exposes_the_working_set() {
    // Compile-time check that the prelude covers the README quickstart.
    let s = DenseMatrix::from_rows(&[&[1.0], &[2.0]]);
    let r = DenseMatrix::from_rows(&[&[3.0]]);
    let tn = NormalizedMatrix::pk_fk(s.into(), &[0, 0], r.into());
    let _planned = PlannedMatrix::with_strategy(tn.clone(), Strategy::CostBased)
        .with_profile(MachineProfile::REFERENCE);
    let _rule = DecisionRule::default();
    let _csr = CsrMatrix::identity(2);
    let _km = KMeans::new(1, 1);
    let _gn = Gnmf::new(1, 1);
    let _lr = LogisticRegressionGd::default();
    let _ne = LinearRegressionNe::new();
    let _gd = LinearRegressionGd::default();
    assert_eq!(tn.rows(), 2);
}

#[test]
fn cost_based_planner_agrees_with_brute_force_comparison_on_every_op() {
    use morpheus::core::cost::estimate_op;
    let profile = MachineProfile::REFERENCE;
    // A spread of join shapes: deep factorized win, the L-shaped slow-down
    // corner, and a middling point.
    for (tr, fr) in [(20.0, 4.0), (1.0, 0.25), (5.0, 1.0)] {
        let ds = PkFkSpec::from_ratios(tr, fr, 50, 8, 11).generate();
        let planned =
            PlannedMatrix::with_strategy(ds.tn.clone(), Strategy::CostBased).with_profile(profile);
        for op in OpKind::ALL {
            let decision = planned.plan(op).expect("factorized repr plans");
            let est = estimate_op(&profile, &ds.tn, op);
            let brute_force = est.factorized_ns < est.materialized_total_ns(false);
            assert_eq!(
                decision.factorized, brute_force,
                "planner and brute-force cost comparison disagree \
                 on {op:?} at TR={tr}, FR={fr}"
            );
            assert_eq!(decision.factorized_ns, est.factorized_ns);
        }
    }
}

#[test]
fn per_op_decisions_diverge_and_stay_bit_identical() {
    use std::sync::{Arc, Mutex};
    // TR = 10, FR = 2: the crossprod rewrite is predicted
    // factorized-profitable while the §3.3.7 element-wise fallback (which
    // materializes internally either way) routes materialized — two
    // different paths from one PlannedMatrix, observed via the decision
    // log.
    let ds = PkFkSpec::from_ratios(10.0, 2.0, 50, 4, 12).generate();
    let tn = ds.tn;
    let log: Arc<Mutex<Vec<Decision>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&log);
    let planned = PlannedMatrix::with_strategy(tn.clone(), Strategy::CostBased)
        .with_profile(MachineProfile::REFERENCE)
        .with_hook(move |d| sink.lock().unwrap().push(*d));

    let cp = planned.crossprod();
    let x = Matrix::Dense(DenseMatrix::from_fn(tn.rows(), tn.cols(), |i, j| {
        (i * 31 + j * 17) as f64
    }));
    let ew = planned.add_matrix(&x);

    let decisions = log.lock().unwrap().clone();
    assert_eq!(decisions.len(), 2);
    assert!(decisions[0].factorized, "crossprod should factorize");
    assert!(!decisions[1].factorized, "ew fallback should materialize");
    // Both results bit-identical to the pure path each op was routed to.
    assert_eq!(cp, tn.crossprod());
    assert!(ew.approx_eq(&tn.materialize().add(&x), 0.0));
}

#[test]
fn heuristic_strategy_reproduces_the_paper_rule_per_op() {
    let rule = DecisionRule::default();
    for (tr, fr, seed) in [(20.0, 4.0, 1), (2.0, 0.5, 2), (10.0, 0.5, 3), (2.0, 4.0, 4)] {
        let ds = PkFkSpec::from_ratios(tr, fr, 40, 6, seed).generate();
        let expected = rule.should_factorize(&ds.tn);
        let planned = PlannedMatrix::with_strategy(ds.tn, Strategy::Heuristic(rule));
        for op in OpKind::ALL {
            assert_eq!(
                planned.plan(op).unwrap().factorized,
                expected,
                "heuristic must apply the τ/ρ rule uniformly ({op:?}, TR={tr}, FR={fr})"
            );
        }
    }
}
