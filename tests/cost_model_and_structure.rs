//! Integration tests for the cost model (Table 3/11), the decision rule,
//! and structural invariants that span crates.

use morpheus::core::cost::{self, Dims};
use morpheus::data::synth::PkFkSpec;
use morpheus::prelude::*;

#[test]
fn cost_model_limits_match_paper_table3() {
    // lim TR→∞ speedup = 1 + FR for linear ops; (1+FR)² for crossprod.
    for fr in [0.5, 1.0, 2.0, 4.0] {
        let d = Dims {
            n_s: 1e9,
            d_s: 20.0,
            n_r: 1e3,
            d_r: fr * 20.0,
        };
        let lin = cost::scalar_op(&d).speedup();
        assert!((lin - (1.0 + fr)).abs() / (1.0 + fr) < 1e-3);
        let cp = cost::crossprod(&d).speedup();
        assert!((cp - (1.0 + fr).powi(2)).abs() / (1.0 + fr).powi(2) < 1e-2);
    }
    // lim FR→∞ speedup = TR.
    for tr in [2.0, 10.0, 50.0] {
        let d = Dims {
            n_s: tr * 1e4,
            d_s: 1.0,
            n_r: 1e4,
            d_r: 1e7,
        };
        let lin = cost::scalar_op(&d).speedup();
        assert!((lin - tr).abs() / tr < 1e-2);
    }
}

#[test]
fn cost_model_redundancy_equals_size_ratio() {
    // §3.3.1: the scalar-op speedup is exactly size(T) / (size(S)+size(R)).
    let ds = PkFkSpec::from_ratios(10.0, 2.0, 100, 10, 1).generate();
    let d = Dims::new(1000, 10, 100, 20);
    let predicted = cost::scalar_op(&d).speedup();
    assert!((predicted - ds.tn.redundancy_ratio()).abs() < 1e-9);
}

#[test]
fn decision_rule_matches_cost_model_sign_on_clear_cases() {
    let rule = DecisionRule::default();
    // Deep in the win region, the model predicts > 1 and the rule says F.
    let hot = PkFkSpec::from_ratios(20.0, 4.0, 50, 5, 2).generate();
    assert!(rule.should_factorize(&hot.tn));
    let d_hot = Dims::new(1000, 5, 50, 20);
    assert!(cost::scalar_op(&d_hot).speedup() > 1.0);
    // Deep in the loss region the rule refuses even though raw flop counts
    // might still favor F — it is deliberately conservative about operator
    // overheads (§5.1).
    let cold = PkFkSpec::from_ratios(1.0, 0.25, 40, 8, 3).generate();
    assert!(!rule.should_factorize(&cold.tn));
}

#[test]
fn normalized_matrix_never_materializes_during_rewrites() {
    // Indirect structural check: factorized operator results on a join
    // whose materialized form would be huge. 2000 logical rows x 3000
    // columns = 48 MB dense — but the factorized ops only ever touch the
    // base tables (~3000 entries each); running several of them in
    // milliseconds-scale memory is the evidence.
    let s = DenseMatrix::from_fn(2_000, 1, |i, _| (i % 17) as f64);
    let r = DenseMatrix::from_fn(2, 2_999, |i, j| ((i + j) % 13) as f64 * 0.1);
    let fk: Vec<usize> = (0..2_000).map(|i| i % 2).collect();
    let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
    assert_eq!(tn.cols(), 3_000);
    let x = DenseMatrix::from_fn(3_000, 1, |i, _| ((i % 7) as f64 - 3.0) * 0.01);
    let out = tn.lmm(&x);
    assert_eq!(out.shape(), (2_000, 1));
    assert!((tn.sum() - tn.materialize().sum()).abs() < 1e-6 * tn.sum().abs().max(1.0));
}

#[test]
fn join_stats_round_trip_through_generators() {
    let spec = PkFkSpec::from_ratios(12.0, 3.0, 64, 8, 9);
    let ds = spec.generate();
    let stats = ds.tn.stats();
    assert_eq!(stats.n_rows, 768);
    assert_eq!(stats.d_entity, 8);
    assert_eq!(stats.attr_dims, vec![(64, 24)]);
    assert!((stats.tuple_ratio - 12.0).abs() < 1e-12);
    assert!((stats.feature_ratio - 3.0).abs() < 1e-12);
}

#[test]
fn facade_prelude_exposes_the_working_set() {
    // Compile-time check that the prelude covers the README quickstart.
    let s = DenseMatrix::from_rows(&[&[1.0], &[2.0]]);
    let r = DenseMatrix::from_rows(&[&[3.0]]);
    let tn = NormalizedMatrix::pk_fk(s.into(), &[0, 0], r.into());
    let _planned = PlannedMatrix::with_strategy(tn.clone(), Strategy::CostBased)
        .with_profile(MachineProfile::REFERENCE);
    let _rule = DecisionRule::default();
    let _csr = CsrMatrix::identity(2);
    let _km = KMeans::new(1, 1);
    let _gn = Gnmf::new(1, 1);
    let _lr = LogisticRegressionGd::default();
    let _ne = LinearRegressionNe::new();
    let _gd = LinearRegressionGd::default();
    assert_eq!(tn.rows(), 2);
}

#[test]
fn cost_based_planner_agrees_with_brute_force_comparison_on_every_op() {
    use morpheus::core::cost::estimate_op;
    let profile = MachineProfile::REFERENCE;
    // A spread of join shapes: deep factorized win, the L-shaped slow-down
    // corner, and a middling point.
    for (tr, fr) in [(20.0, 4.0), (1.0, 0.25), (5.0, 1.0)] {
        let ds = PkFkSpec::from_ratios(tr, fr, 50, 8, 11).generate();
        let planned =
            PlannedMatrix::with_strategy(ds.tn.clone(), Strategy::CostBased).with_profile(profile);
        for op in OpKind::ALL {
            let decision = planned.plan(op).expect("factorized repr plans");
            let est = estimate_op(&profile, &ds.tn, op);
            let brute_force = est.factorized_ns < est.materialized_total_ns(false);
            assert_eq!(
                decision.factorized, brute_force,
                "planner and brute-force cost comparison disagree \
                 on {op:?} at TR={tr}, FR={fr}"
            );
            assert_eq!(decision.factorized_ns, est.factorized_ns);
        }
    }
}

#[test]
fn per_op_decisions_diverge_and_stay_bit_identical() {
    use std::sync::{Arc, Mutex};
    // TR = 10, FR = 2: the crossprod rewrite is predicted
    // factorized-profitable while the §3.3.7 element-wise fallback (which
    // materializes internally either way) routes materialized — two
    // different paths from one PlannedMatrix, observed via the decision
    // log.
    let ds = PkFkSpec::from_ratios(10.0, 2.0, 50, 4, 12).generate();
    let tn = ds.tn;
    let log: Arc<Mutex<Vec<Decision>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&log);
    let planned = PlannedMatrix::with_strategy(tn.clone(), Strategy::CostBased)
        .with_profile(MachineProfile::REFERENCE)
        .with_hook(move |d| sink.lock().unwrap().push(*d));

    let cp = planned.crossprod();
    let x = Matrix::Dense(DenseMatrix::from_fn(tn.rows(), tn.cols(), |i, j| {
        (i * 31 + j * 17) as f64
    }));
    let ew = planned.add_matrix(&x);

    let decisions = log.lock().unwrap().clone();
    assert_eq!(decisions.len(), 2);
    assert!(decisions[0].factorized, "crossprod should factorize");
    assert!(!decisions[1].factorized, "ew fallback should materialize");
    // Both results bit-identical to the pure path each op was routed to.
    assert_eq!(cp, tn.crossprod());
    assert!(ew.approx_eq(&tn.materialize().add(&x), 0.0));
}

// ---------------------------------------------------------------------
// Property tests for the cost layer: the estimates must be well-formed
// (finite, positive), monotone in problem size, and the planner must
// agree with a brute-force estimate comparison — over *randomized* join
// shapes and sparsity, not just hand-picked points.
// ---------------------------------------------------------------------

// Selective proptest imports (no prelude glob): the prelude's `Strategy`
// trait would collide with the planner's `Strategy` enum used above.
use morpheus::core::cost::{estimate_dmm, estimate_op, materialize_ns, OpKind as Op};
use proptest::{prop_assert, proptest, ProptestConfig};

/// A dense-S PK-FK join whose attribute table is dense or (when
/// `nnz_per_row` is `Some`) sparse with that many stored entries per row.
fn random_tn(
    n_s: usize,
    d_s: usize,
    n_r: usize,
    d_r: usize,
    nnz_per_row: Option<usize>,
    seed: u64,
) -> NormalizedMatrix {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let s = DenseMatrix::from_fn(n_s, d_s, |_, _| next());
    let r: Matrix = match nnz_per_row {
        None => DenseMatrix::from_fn(n_r, d_r, |_, _| next()).into(),
        Some(k) => {
            let k = k.min(d_r);
            let trips: Vec<(usize, usize, f64)> = (0..n_r)
                .flat_map(|i| (0..k).map(move |j| (i, (i * 7 + j * 3 + seed as usize) % d_r, 1.0)))
                .collect();
            // Duplicate columns collapse, so nnz may be below n_r * k —
            // that's fine, the estimate reads the actual stored count.
            Matrix::Sparse(CsrMatrix::from_triplets(n_r, d_r, &trips).unwrap())
        }
    };
    let fk: Vec<usize> = (0..n_s).map(|i| (i * 13 + seed as usize) % n_r).collect();
    NormalizedMatrix::pk_fk(s.into(), &fk, r)
}

/// A small PK-FK right operand for `dmm`, conformable with `a` (its row
/// count equals `a.cols()`).
fn dmm_rhs(a: &NormalizedMatrix, seed: u64) -> NormalizedMatrix {
    let n_b = a.cols();
    let n_rb = (n_b / 2).max(1);
    let sb = DenseMatrix::from_fn(n_b, 2, |i, j| {
        ((i * 3 + j + seed as usize) % 7) as f64 - 3.0
    });
    let rb = DenseMatrix::from_fn(n_rb, 3, |i, j| ((i + j) % 5) as f64 * 0.5);
    let fk: Vec<usize> = (0..n_b).map(|i| i % n_rb).collect();
    NormalizedMatrix::pk_fk(sb.into(), &fk, rb.into())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn estimates_are_finite_and_positive_over_random_shapes_and_nnz(
        (n_s, d_s, n_r, d_r) in (1usize..200, 1usize..10, 1usize..40, 1usize..12),
        nnz in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        // nnz = 0 means a dense attribute table; otherwise sparse.
        let tn = random_tn(n_s, d_s, n_r, d_r, (nnz > 0).then_some(nnz), seed);
        let profile = MachineProfile::REFERENCE;
        for op in Op::ALL {
            let e = estimate_op(&profile, &tn, op);
            for v in [e.factorized_ns, e.materialized_op_ns, e.materialize_ns] {
                prop_assert!(
                    v.is_finite() && v > 0.0,
                    "bad estimate {v} for {op:?} at n_s={n_s} d_s={d_s} n_r={n_r} d_r={d_r} nnz={nnz}"
                );
            }
        }
        let e = estimate_dmm(&profile, &tn, &dmm_rhs(&tn, seed));
        for v in [e.factorized_ns, e.materialized_op_ns, e.materialize_ns] {
            prop_assert!(v.is_finite() && v > 0.0, "bad dmm estimate {v}");
        }
        prop_assert!(materialize_ns(&profile, &tn) > 0.0);
    }

    #[test]
    fn estimates_are_monotone_in_row_and_column_counts(
        (n_s, d_s, n_r, d_r) in (32usize..160, 1usize..6, 1usize..20, 1usize..5),
        extra_rows in 1usize..120,
        extra_cols in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        // d_total ≤ 12 < 32 ≤ n_s on both sides of the growth, so every
        // operator (including ginv) stays in one cost-form branch.
        let profile = MachineProfile::REFERENCE;
        let base = random_tn(n_s, d_s, n_r, d_r, None, seed);
        let taller = random_tn(n_s + extra_rows, d_s, n_r, d_r, None, seed);
        let wider = random_tn(n_s, d_s, n_r, d_r + extra_cols, None, seed);
        for op in Op::ALL {
            let e0 = estimate_op(&profile, &base, op);
            for (label, grown) in [("rows", &taller), ("cols", &wider)] {
                let e1 = estimate_op(&profile, grown, op);
                prop_assert!(
                    e1.factorized_ns >= e0.factorized_ns
                        && e1.materialized_op_ns >= e0.materialized_op_ns
                        && e1.materialize_ns >= e0.materialize_ns,
                    "estimate for {op:?} decreased when {label} grew: \
                     {e0:?} -> {e1:?} (n_s={n_s} d_s={d_s} n_r={n_r} d_r={d_r})"
                );
            }
        }
    }

    #[test]
    fn planner_agrees_with_brute_force_estimates_on_random_shapes(
        (n_s, d_s, n_r, d_r) in (1usize..300, 1usize..8, 1usize..50, 1usize..10),
        seed in 0u64..1_000_000,
    ) {
        let profile = MachineProfile::REFERENCE;
        let tn = random_tn(n_s, d_s, n_r, d_r, None, seed);
        let planned = PlannedMatrix::with_strategy(tn.clone(), Strategy::CostBased)
            .with_profile(profile);
        for op in Op::ALL {
            let decision = planned.plan(op).expect("factorized repr plans");
            let est = estimate_op(&profile, &tn, op);
            let brute_force = est.factorized_ns < est.materialized_total_ns(false);
            prop_assert!(
                decision.factorized == brute_force,
                "planner disagrees with brute force on {op:?} at \
                 n_s={n_s} d_s={d_s} n_r={n_r} d_r={d_r}"
            );
        }
    }
}

#[test]
fn vectorized_reduction_rates_no_longer_show_the_serial_chain_gap() {
    // Before the fixed-lane reduction kernels, calibration priced the
    // three reduction classes at roughly 0.21 / 0.44 / 0.61 ns per
    // element (independent-accumulator row sums / min folds / the serial
    // whole-matrix sum chain): the fold and serial-chain kernels were
    // 2–3x off the vectorized rate, and rowMin-heavy plans (K-Means)
    // inherited that drift. With eight accumulator lanes and the
    // select-based min fold, all three run at streaming bandwidth.
    //
    // Kernel-rate ratios are only meaningful in optimized builds — debug
    // codegen neither vectorizes the lanes nor keeps them in registers —
    // so the measurement is release-gated.
    if cfg!(debug_assertions) {
        return;
    }
    // Two noise-robust invariants instead of one absolute spread bound
    // (per-row rates inflate together under background load, the
    // contiguous whole-matrix sum barely moves, so a single lo/hi ratio
    // is flaky on busy machines):
    //   1. the two per-row classes (sum lanes vs min-fold lanes) now run
    //      the same kernel structure and must stay within 2x;
    //   2. the whole-matrix sum is no longer the serial-chain laggard —
    //      before vectorization it was ~3x *slower* than row sums, now
    //      it is the fastest class.
    let p = MachineProfile::calibrate();
    let row_ratio = (p.red_ns / p.minmax_ns).max(p.minmax_ns / p.red_ns);
    assert!(
        row_ratio < 2.0,
        "per-row reduction classes drifted apart again: red={} minmax={} ({:.2}x)",
        p.red_ns,
        p.minmax_ns,
        row_ratio
    );
    assert!(
        p.sum_ns < p.red_ns * 1.5,
        "whole-matrix sum regressed to a serial chain: sum={} vs red={}",
        p.sum_ns,
        p.red_ns
    );
}

#[test]
fn heuristic_strategy_reproduces_the_paper_rule_per_op() {
    let rule = DecisionRule::default();
    for (tr, fr, seed) in [(20.0, 4.0, 1), (2.0, 0.5, 2), (10.0, 0.5, 3), (2.0, 4.0, 4)] {
        let ds = PkFkSpec::from_ratios(tr, fr, 40, 6, seed).generate();
        let expected = rule.should_factorize(&ds.tn);
        let planned = PlannedMatrix::with_strategy(ds.tn, Strategy::Heuristic(rule));
        for op in OpKind::ALL {
            assert_eq!(
                planned.plan(op).unwrap().factorized,
                expected,
                "heuristic must apply the τ/ρ rule uniformly ({op:?}, TR={tr}, FR={fr})"
            );
        }
    }
}
