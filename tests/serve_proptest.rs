//! Property suite for the micro-batched scoring service: coalescing must
//! be *invisible* except in throughput.
//!
//! 1. **Batching equivalence** — for random PK-FK schemas, models, and
//!    request mixes, scores from a micro-batched service are bit-identical
//!    to batch-size-1 scoring and to one full-table scoring pass, across
//!    scorer thread counts {1, 8} and routing strategies
//!    {heuristic, cost-based}.
//! 2. **Chaos** — with a seeded `serve.batch` panic schedule injected,
//!    every request either returns those same bit-identical scores or the
//!    structured [`ServeError::BatchAborted`] — never a partial or wrong
//!    answer — and the service keeps serving afterwards.
//!
//! Both properties hold the failpoint registry's exclusive guard:
//! failpoints are process-global, so schedules must not leak between
//! concurrently running tests.

use morpheus::core::Strategy; // disambiguate from proptest's Strategy trait
use morpheus::prelude::*;
use morpheus::runtime::faults;
use morpheus::serve::{ScoringModel, ScoringService, ServeConfig, ServeError, ServeMode};
use proptest::prelude::*;
use proptest::Strategy as PropStrategy;
use std::time::Duration;

/// A random serving scenario: schema, model, and a mix of requests.
#[derive(Debug, Clone)]
struct Scenario {
    tn: NormalizedMatrix,
    model: ScoringModel,
    requests: Vec<Vec<usize>>,
}

fn arb_scenario() -> impl PropStrategy<Value = Scenario> {
    (
        2usize..40,
        1usize..8,
        1usize..24,
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(|(n_s, n_r, n_req, seed, logistic)| {
            let mut state = seed;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            };
            let s = DenseMatrix::from_fn(n_s, 3, |_, _| next());
            let r = DenseMatrix::from_fn(n_r, 5, |_, _| next());
            let fk: Vec<usize> = (0..n_s)
                .map(|i| ((next().abs() * n_r as f64) as usize + i) % n_r)
                .collect();
            let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
            let w = DenseMatrix::from_fn(tn.cols(), 1, |_, _| next());
            let model = if logistic {
                ScoringModel::Logistic(w)
            } else {
                ScoringModel::Linear(w)
            };
            let requests: Vec<Vec<usize>> = (0..n_req)
                .map(|_| {
                    let len = 1 + (next().abs() * 6.0) as usize;
                    (0..len)
                        .map(|_| (next().abs() * n_s as f64) as usize % n_s)
                        .collect()
                })
                .collect();
            Scenario {
                tn,
                model,
                requests,
            }
        })
}

/// Full-table scores for each serving mode — the per-row ground truth any
/// batch composition must reproduce bitwise.
fn ground_truth(sc: &Scenario, mode: ServeMode) -> DenseMatrix {
    let w = sc.model.weights();
    match (&sc.model, mode) {
        (ScoringModel::Linear(_), ServeMode::Factorized) => {
            morpheus::ml::linreg::predict(&sc.tn, w)
        }
        (ScoringModel::Linear(_), ServeMode::Resident) => {
            morpheus::ml::linreg::predict(&sc.tn.materialize(), w)
        }
        (ScoringModel::Logistic(_), ServeMode::Factorized) => {
            morpheus::ml::logreg::predict_proba(&sc.tn, w)
        }
        (ScoringModel::Logistic(_), ServeMode::Resident) => {
            morpheus::ml::logreg::predict_proba(&sc.tn.materialize(), w)
        }
    }
}

/// Submits every request concurrently and returns the answers in request
/// order.
fn drive(svc: &ScoringService, requests: &[Vec<usize>]) -> Vec<Result<Vec<f64>, ServeError>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|rows| scope.spawn(move || svc.score(rows.clone())))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    })
}

fn check_bitwise(rows: &[usize], got: &[f64], truth: &DenseMatrix) {
    assert_eq!(got.len(), rows.len());
    for (j, &r) in rows.iter().enumerate() {
        assert_eq!(
            got[j].to_bits(),
            truth.get(r, 0).to_bits(),
            "row {r} differs from the full-table score"
        );
    }
}

fn serve_config(strategy: Strategy, scorers: usize, batch_max: usize) -> ServeConfig {
    ServeConfig::default()
        .with_strategy(strategy)
        .with_profile(MachineProfile::REFERENCE)
        .with_scorers(scorers)
        .with_batch_max(batch_max)
        .with_batch_window(Duration::from_micros(500))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_scoring_is_bit_identical_to_per_request(sc in arb_scenario()) {
        let _guard = faults::exclusive();
        for strategy in [Strategy::Heuristic(DecisionRule::default()), Strategy::CostBased] {
            for scorers in [1usize, 8] {
                let batched = ScoringService::new(
                    sc.tn.clone(),
                    sc.model.clone(),
                    serve_config(strategy, scorers, 32),
                );
                let single = ScoringService::new(
                    sc.tn.clone(),
                    sc.model.clone(),
                    serve_config(strategy, scorers, 1),
                );
                let truth_b = ground_truth(&sc, batched.mode());
                let truth_s = ground_truth(&sc, single.mode());
                let got_b = drive(&batched, &sc.requests);
                let got_s = drive(&single, &sc.requests);
                for (rows, (b, s)) in sc.requests.iter().zip(got_b.iter().zip(&got_s)) {
                    let b = b.as_ref().expect("no faults configured");
                    let s = s.as_ref().expect("no faults configured");
                    check_bitwise(rows, b, &truth_b);
                    check_bitwise(rows, s, &truth_s);
                    if batched.mode() == single.mode() {
                        // The headline property: coalescing is invisible.
                        for (x, y) in b.iter().zip(s) {
                            prop_assert_eq!(x.to_bits(), y.to_bits());
                        }
                    }
                }
                // Batch-size-1 must not coalesce; the batched side never
                // sheds (queue cap far above the request count).
                let (sb, ss) = (batched.stats(), single.stats());
                prop_assert_eq!(ss.batches, ss.batched_requests);
                prop_assert_eq!(sb.shed, 0);
                prop_assert_eq!(sb.requests as usize, sc.requests.len());
            }
        }
    }

    #[test]
    fn chaos_never_corrupts_a_response(sc in arb_scenario(), fault_seed in any::<u64>()) {
        let _guard = faults::exclusive();
        let spec = format!("serve.batch=panic(0.4,seed={fault_seed})");
        faults::configure(&spec).unwrap();
        let svc = ScoringService::new(
            sc.tn.clone(),
            sc.model.clone(),
            serve_config(Strategy::Heuristic(DecisionRule::default()), 2, 16),
        );
        let truth = ground_truth(&sc, svc.mode());
        let outcomes = drive(&svc, &sc.requests);
        let mut aborted = 0usize;
        for (rows, outcome) in sc.requests.iter().zip(&outcomes) {
            match outcome {
                Ok(got) => check_bitwise(rows, got, &truth),
                Err(ServeError::BatchAborted) => aborted += 1,
                Err(other) => prop_assert!(false, "unexpected error under chaos: {other}"),
            }
        }
        // Heal: disarm the schedule and re-drive every request — the
        // service must answer all of them, bit-identically.
        faults::clear();
        for (rows, retried) in sc.requests.iter().zip(drive(&svc, &sc.requests)) {
            check_bitwise(rows, &retried.expect("post-chaos request failed"), &truth);
        }
        let stats = svc.stats();
        prop_assert!(stats.batch_aborts >= 1 || aborted == 0);
        prop_assert_eq!(stats.requests as usize, 2 * sc.requests.len());
    }
}
