//! Integration tests for the scripting layer: full paper algorithms written
//! as R-style scripts, run against every operand kind, and checked against
//! the native Rust implementations.

use morpheus::lang::{eval_program, optimize, parse, Env, Value};
use morpheus::prelude::*;

fn bind_common(env: &mut Env, y: &DenseMatrix, alpha: f64, d: usize) {
    env.bind("Y", Value::Dense(y.clone()));
    env.bind("alpha", Value::Scalar(alpha));
    env.bind("d", Value::Scalar(d as f64));
}

#[test]
fn logistic_regression_script_on_star_schema() {
    let ds = StarSpec {
        n_s: 80,
        d_s: 2,
        tables: vec![(6, 3), (4, 2)],
        seed: 1,
    }
    .generate();
    let y = ds.labels();
    let script = r#"
        w = zeros(d, 1)
        for (i in 1:8) {
            w = w + alpha * (t(T) %*% (Y / (1 + exp(Y * (T %*% w)))))
        }
        w
    "#;
    let program = optimize(&parse(script).unwrap());

    let mut env_f = Env::new();
    env_f.bind("T", Value::normalized(ds.tn.clone()));
    bind_common(&mut env_f, &y, 0.01, ds.tn.cols());
    let w_script = eval_program(&program, &mut env_f).unwrap();

    let native = LogisticRegressionGd::new(0.01, 8).fit(&ds.tn, &y);
    assert!(w_script.as_dense().unwrap().approx_eq(&native.w, 1e-9));
}

#[test]
fn linear_regression_script_on_mn_join() {
    let ds = MnJoinSpec {
        n_s: 60,
        n_r: 60,
        d_s: 3,
        d_r: 3,
        n_u: 10,
        seed: 3,
    }
    .generate();
    let program = parse("ginv(crossprod(T)) %*% (t(T) %*% Y)").unwrap();
    let mut env = Env::new();
    env.bind("T", Value::normalized(ds.tn.clone()));
    env.bind("Y", Value::Dense(ds.y.clone()));
    let w = eval_program(&program, &mut env).unwrap();
    let tm = ds.tn.materialize().to_dense();
    let resid = tm.matmul(w.as_dense().unwrap()).sub(&ds.y);
    // Noiseless planted model ⇒ near-zero residual.
    assert!(resid.frobenius_norm() / ds.y.frobenius_norm().max(1e-12) < 1e-5);
}

#[test]
fn aggregation_script_matches_typed_api_on_real_dataset() {
    let ds = morpheus::data::realsim::by_name("Flights")
        .unwrap()
        .generate(0.002, 5);
    let program = parse("sum(rowSums(T)) - sum(colSums(T))").unwrap();
    let mut env = Env::new();
    env.bind("T", Value::normalized(ds.tn.clone()));
    let v = eval_program(&program, &mut env).unwrap();
    assert!(v.as_scalar().unwrap().abs() < 1e-6 * ds.tn.sum().abs().max(1.0));
}

#[test]
fn optimizer_preserves_script_semantics_on_matrices() {
    let ds = PkFkSpec::from_ratios(4.0, 1.0, 20, 3, 7).generate();
    let src = "sum(t(t(T)) * 1 + 0) + 2 ^ 3";
    let plain = parse(src).unwrap();
    let opt = optimize(&plain);
    assert!(opt.expr_count() < plain.expr_count());
    for program in [&plain, &opt] {
        let mut env = Env::new();
        env.bind("T", Value::normalized(ds.tn.clone()));
        let v = eval_program(program, &mut env)
            .unwrap()
            .as_scalar()
            .unwrap();
        let expected = ds.tn.sum() + 8.0;
        assert!((v - expected).abs() < 1e-9 * expected.abs().max(1.0));
    }
}

#[test]
fn kmeans_script_runs_factorized_and_matches_materialized() {
    // The paper's Algorithm 7/15 as a script: pairwise distances via
    // rowSums(T^2), assignment via D == rowMin(D), centroid update via
    // (t(T) %*% A) / (ones(d,1) %*% colSums(A)).
    let ds = PkFkSpec::from_ratios(8.0, 2.0, 25, 3, 11).generate();
    let n = ds.tn.rows();
    let d = ds.tn.cols();
    let k = 3usize;
    let script = r#"
        DT = rowSums(T ^ 2) %*% ones(1, k)
        T2 = 2 * T
        for (i in 1:6) {
            D = DT + ones(n, 1) %*% colSums(C ^ 2) - T2 %*% C
            A = D == rowMin(D) %*% ones(1, k)
            C = (t(T) %*% A) / (ones(d, 1) %*% colSums(A))
        }
        C
    "#;
    let program = parse(script).unwrap();
    // Deterministic non-degenerate initial centroids.
    let c0 = DenseMatrix::from_fn(d, k, |i, j| ((i * 3 + j * 7) % 5) as f64 * 0.3 - 0.6);

    let run = |t: morpheus::lang::Value| {
        let mut env = Env::new();
        env.bind("T", t);
        env.bind("C", Value::Dense(c0.clone()));
        env.bind("k", Value::Scalar(k as f64));
        env.bind("n", Value::Scalar(n as f64));
        env.bind("d", Value::Scalar(d as f64));
        eval_program(&program, &mut env).unwrap()
    };
    let c_f = run(Value::normalized(ds.tn.clone()));
    let c_m = run(Value::Dense(ds.tn.materialize().to_dense()));
    let cf = c_f.as_dense().unwrap();
    assert_eq!(cf.shape(), (d, k));
    assert!(cf.as_slice().iter().all(|v| v.is_finite()));
    assert!(
        cf.approx_eq(c_m.as_dense().unwrap(), 1e-8),
        "factorized and materialized K-Means scripts diverged"
    );
}

#[test]
fn gnmf_script_runs_factorized_and_matches_native() {
    // The paper's Algorithm 8/16 as a script: multiplicative updates with
    // the transposed-LMM `t(T) %*% W` and the LMM `T %*% H`.
    let ds = PkFkSpec::from_ratios(6.0, 1.0, 20, 3, 13).generate();
    let tn = ds.tn.scalar_add(2.0); // NMF needs non-negative data
    let (n, d, r) = (tn.rows(), tn.cols(), 2usize);
    let script = r#"
        for (i in 1:5) {
            H = H * (t(T) %*% W) / (H %*% crossprod(W) + eps)
            W = W * (T %*% H) / (W %*% crossprod(H) + eps)
        }
        W
    "#;
    let program = parse(script).unwrap();
    let w0 = DenseMatrix::from_fn(n, r, |i, j| 0.5 + 0.1 * (((i + 2 * j) % 7) as f64));
    let h0 = DenseMatrix::from_fn(d, r, |i, j| 0.5 + 0.1 * (((2 * i + j) % 5) as f64));

    let run = |t: Value| {
        let mut env = Env::new();
        env.bind("T", t);
        env.bind("W", Value::Dense(w0.clone()));
        env.bind("H", Value::Dense(h0.clone()));
        env.bind("eps", Value::Scalar(1e-12));
        eval_program(&program, &mut env).unwrap()
    };
    let w_f = run(Value::normalized(tn.clone()));
    let w_m = run(Value::Dense(tn.materialize().to_dense()));
    assert!(w_f
        .as_dense()
        .unwrap()
        .approx_eq(w_m.as_dense().unwrap(), 1e-8));
    // And against the native trainer with the same initialization.
    let native = morpheus::ml::gnmf::Gnmf::new(r, 5).fit_from(&tn, &w0, &h0);
    assert!(w_f.as_dense().unwrap().approx_eq(&native.w, 1e-8));
}

#[test]
fn script_errors_surface_cleanly() {
    // Parse error.
    assert!(parse("w = (1 +").is_err());
    // Undefined variable at eval time.
    let p = parse("missing + 1").unwrap();
    assert!(eval_program(&p, &mut Env::new()).is_err());
    // Shape error on matmul.
    let ds = PkFkSpec::from_ratios(2.0, 1.0, 10, 2, 9).generate();
    let p2 = parse("T %*% T").unwrap();
    let mut env = Env::new();
    env.bind("T", Value::normalized(ds.tn));
    assert!(eval_program(&p2, &mut env).is_err());
}
