//! # Morpheus: factorized linear algebra over normalized data
//!
//! A Rust implementation of *"Towards Linear Algebra over Normalized Data"*
//! (Chen, Kumar, Naughton, Patel — VLDB 2017). This facade crate re-exports
//! the whole workspace behind one dependency:
//!
//! * [`runtime`] — the shared scoped-thread parallel runtime ([`runtime::Executor`],
//!   the process-global [`runtime::Runtime`], `MORPHEUS_NUM_THREADS`).
//! * [`dense`] — dense `f64` matrix kernels (GEMM, crossprod, aggregations),
//!   band-parallel on the shared runtime.
//! * [`sparse`] — CSR sparse matrices and the join indicator matrices.
//! * [`linalg`] — QR, LU, Cholesky, eigendecomposition, SVD, pseudo-inverse.
//! * [`core`] — the **normalized matrix** and the factorized rewrite rules.
//! * [`ml`] — ML algorithms (logistic/linear regression, K-Means, GNMF)
//!   written once and automatically factorized.
//! * [`data`] — synthetic and simulated-real dataset generators.
//! * [`chunked`] — a row-chunked parallel backend (Oracle R Enterprise analog).
//! * [`lang`] — an R-like LA scripting layer: the same script runs
//!   materialized or factorized depending on what `T` is bound to.
//!
//! ## Quickstart
//!
//! ```
//! use morpheus::prelude::*;
//!
//! // Entity table S (4 rows, 2 features), attribute table R (2 rows, 2
//! // features), and the foreign key S.K -> R.
//! let s = DenseMatrix::from_rows(&[&[1., 2.], &[4., 3.], &[5., 6.], &[8., 7.]]);
//! let r = DenseMatrix::from_rows(&[&[1.1, 2.2], &[3.3, 4.4]]);
//! let fk = [0usize, 1, 1, 0];
//!
//! let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
//! // The normalized matrix behaves exactly like the join output T = [S, KR]:
//! let t = tn.materialize().to_dense();
//! assert_eq!(t.shape(), (4, 4));
//! assert_eq!(tn.sum(), t.sum());
//! ```

pub use morpheus_chunked as chunked;
pub use morpheus_core as core;
pub use morpheus_data as data;
pub use morpheus_dense as dense;
pub use morpheus_lang as lang;
pub use morpheus_linalg as linalg;
pub use morpheus_ml as ml;
pub use morpheus_runtime as runtime;
pub use morpheus_serve as serve;
pub use morpheus_sparse as sparse;

/// Convenient single-line import of the most commonly used types.
///
/// Includes the workspace-wide unified error layer: [`MorpheusError`] and
/// the [`MorpheusResult`] alias (re-exported from `morpheus_core::Result`
/// under a collision-free name), into which every layer's error converts
/// with `?`:
///
/// ```
/// use morpheus::prelude::*;
///
/// fn pipeline(script: &str, data: Vec<f64>) -> MorpheusResult<Value> {
///     let t = DenseMatrix::from_vec(2, 2, data)?; // DenseError -> MorpheusError
///     let program = parse(script)?;               // LangError  -> MorpheusError
///     let mut env = Env::new();
///     env.bind("T", Value::Dense(t));
///     Ok(eval_program(&program, &mut env)?)
/// }
///
/// assert!(pipeline("sum(T)", vec![1., 2., 3., 4.]).is_ok());
/// assert!(matches!(
///     pipeline("sum(T)", vec![1., 2., 3.]),
///     Err(MorpheusError::Dense(_))
/// ));
/// assert!(matches!(
///     pipeline("sum(", vec![1., 2., 3., 4.]),
///     Err(MorpheusError::Lang(_))
/// ));
/// ```
pub mod prelude {
    pub use morpheus_chunked::ChunkedMatrix;
    pub use morpheus_core::{
        cost::OpKind, Decision, DecisionRule, LinearOperand, MachineProfile, Matrix, MorpheusError,
        NormalizedMatrix, PlannedMatrix, Result as MorpheusResult, Strategy,
    };
    pub use morpheus_data::synth::{MnJoinSpec, PkFkSpec, StarSpec};
    pub use morpheus_dense::DenseMatrix;
    pub use morpheus_lang::{
        eval_program, parse, plan_program, run_program, Env, ScriptPlan, Value,
    };
    pub use morpheus_ml::{
        gnmf::Gnmf, kmeans::KMeans, linreg::LinearRegressionGd, linreg::LinearRegressionNe,
        logreg::LogisticRegressionGd,
    };
    pub use morpheus_runtime::{Executor, Runtime};
    pub use morpheus_serve::{ScoringModel, ScoringService, ServeConfig};
    pub use morpheus_sparse::CsrMatrix;
}
